package snmpv3

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"aliaslimit/internal/netsim"
)

func TestTLVRoundTripProperty(t *testing.T) {
	f := func(tag byte, val []byte) bool {
		if tag == 0 {
			tag = tagOctetString
		}
		if len(val) > 60000 {
			val = val[:60000]
		}
		enc := appendTLV(nil, tag, val)
		gotTag, gotVal, rest, err := readTLV(enc)
		return err == nil && gotTag == tag && bytes.Equal(gotVal, val) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTLVLongLengths(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 255, 256, 1000, 40000} {
		val := make([]byte, n)
		enc := appendTLV(nil, tagOctetString, val)
		_, got, _, err := readTLV(enc)
		if err != nil || len(got) != n {
			t.Errorf("length %d: err=%v got=%d", n, err, len(got))
		}
	}
}

func TestTLVErrors(t *testing.T) {
	if _, _, _, err := readTLV([]byte{0x02}); !errors.Is(err, ErrTruncated) {
		t.Errorf("one byte: %v", err)
	}
	if _, _, _, err := readTLV([]byte{0x02, 0x05, 0x01}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short value: %v", err)
	}
	if _, _, _, err := readTLV([]byte{0x02, 0x84, 0, 0, 0, 1, 0}); !errors.Is(err, ErrBadLength) {
		t.Errorf("4-byte length form: %v", err)
	}
	if _, _, _, err := readTLV([]byte{0x02, 0x80, 0x00}); !errors.Is(err, ErrBadLength) {
		t.Errorf("indefinite length: %v", err)
	}
	if _, _, err := expectTLV([]byte{0x04, 0x00}, tagInteger); !errors.Is(err, ErrBadTag) {
		t.Errorf("tag mismatch: %v", err)
	}
}

func TestIntCodec(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, 255, 256, 65535, 1 << 31, 1<<40 + 12345} {
		enc := appendInt(nil, tagInteger, v)
		body, _, err := expectTLV(enc, tagInteger)
		if err != nil {
			t.Fatalf("int %d: %v", v, err)
		}
		got, err := parseInt(body)
		if err != nil || got != v {
			t.Errorf("int %d round-tripped to %d (%v)", v, got, err)
		}
		// Minimal, non-negative encoding.
		if len(body) > 1 && body[0] == 0 && body[1]&0x80 == 0 {
			t.Errorf("int %d not minimal: %x", v, body)
		}
	}
	if _, err := parseInt(nil); err == nil {
		t.Error("empty integer: want error")
	}
	if _, err := parseInt([]byte{0x80}); err == nil {
		t.Error("negative integer: want error")
	}
	if _, err := parseInt(make([]byte, 9)); err == nil {
		t.Error("9-byte integer: want error")
	}
}

func TestOIDCodec(t *testing.T) {
	cases := [][]uint32{
		{1, 3},
		{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0},
		{2, 39, 840, 113549, 1},
		{1, 3, 0, 200000},
	}
	for _, oid := range cases {
		enc := appendOID(nil, oid)
		body, _, err := expectTLV(enc, tagOID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parseOID(body)
		if err != nil || !oidEqual(got, oid) {
			t.Errorf("OID %v round-tripped to %v (%v)", oid, got, err)
		}
	}
	if _, err := parseOID(nil); err == nil {
		t.Error("empty OID: want error")
	}
	if _, err := parseOID([]byte{0x2b, 0x86}); err == nil {
		t.Error("unterminated arc: want error")
	}
	if oidEqual([]uint32{1, 3}, []uint32{1, 3, 6}) {
		t.Error("oidEqual ignores length")
	}
}

func TestDiscoveryRequestShape(t *testing.T) {
	m := NewDiscoveryRequest(1001, 2002)
	enc := m.Marshal()
	got, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.MsgID != 1001 || got.RequestID != 2002 {
		t.Errorf("ids = %d/%d", got.MsgID, got.RequestID)
	}
	if got.Flags&FlagReportable == 0 {
		t.Error("discovery must be reportable")
	}
	if len(got.EngineID) != 0 {
		t.Error("discovery must carry an empty engine ID")
	}
	if got.PDUType != tagGetRequest {
		t.Errorf("PDU type %#x, want GetRequest", got.PDUType)
	}
	if got.SecurityModel != SecurityModelUSM {
		t.Errorf("security model %d", got.SecurityModel)
	}
}

func TestMessageRoundTripWithVarBinds(t *testing.T) {
	m := &Message{
		MsgID: 7, MaxSize: DefaultMaxSize, Flags: 0, SecurityModel: SecurityModelUSM,
		EngineID: []byte{0x80, 0, 0, 0x1f, 3, 1, 2, 3, 4, 5, 6}, EngineBoots: 3, EngineTime: 1234,
		ContextEngineID: []byte{0x80, 0, 0, 0x1f, 3, 1, 2, 3, 4, 5, 6},
		PDUType:         tagReport, RequestID: 9,
		VarBinds: []VarBind{{OID: OIDUsmStatsUnknownEngineIDs, ValueTag: tagCounter32, Value: []byte{0x2a}}},
	}
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.IsReport() {
		t.Error("IsReport = false")
	}
	if !bytes.Equal(got.EngineID, m.EngineID) {
		t.Error("engine ID lost")
	}
	if got.EngineBoots != 3 || got.EngineTime != 1234 {
		t.Errorf("boots/time = %d/%d", got.EngineBoots, got.EngineTime)
	}
	c, ok := got.UnknownEngineIDsCounter()
	if !ok || c != 0x2a {
		t.Errorf("counter = %d,%v", c, ok)
	}
	if !bytes.Equal(got.Marshal(), m.Marshal()) {
		t.Error("re-marshal differs")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x04, 0x02, 1, 2}, // not a sequence
		append((&Message{MsgID: 1, PDUType: tagGetRequest, SecurityModel: 3}).Marshal(), 0xff), // trailing
	}
	for i, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Wrong version.
	m := NewDiscoveryRequest(1, 1).Marshal()
	// Patch version integer (first INTEGER inside outer sequence):
	// outer hdr is 2 or 3 bytes; find 0x02 0x01 0x03 pattern.
	idx := bytes.Index(m, []byte{0x02, 0x01, 0x03})
	if idx < 0 {
		t.Fatal("version TLV not found")
	}
	m[idx+2] = 0x01
	if _, err := Parse(m); err == nil {
		t.Error("version 1: want error")
	}
}

func TestNewEngineIDProperties(t *testing.T) {
	a := NewEngineID(9, 42)
	b := NewEngineID(9, 42)
	c := NewEngineID(9, 43)
	if !bytes.Equal(a, b) {
		t.Error("engine ID not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical engine IDs")
	}
	if len(a) != 11 {
		t.Errorf("engine ID length %d, want 11", len(a))
	}
	if a[0]&0x80 == 0 {
		t.Error("enterprise high bit must be set (RFC 3411 format)")
	}
	if a[4] != engineIDFormatMAC {
		t.Errorf("format octet %d, want MAC", a[4])
	}
}

// agentFixture wires an agent onto a fabric device.
func agentFixture(t *testing.T, boots int64) (*netsim.Fabric, *netsim.SimClock, netip.Addr, []byte) {
	t.Helper()
	clk := netsim.NewSimClock(time.Unix(10000, 0))
	f := netsim.New(clk)
	addr := netip.MustParseAddr("10.0.0.1")
	addr2 := netip.MustParseAddr("10.0.0.2")
	d, err := netsim.NewDevice(netsim.DeviceConfig{ID: "r1", Addrs: []netip.Addr{addr, addr2}}, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	engineID := NewEngineID(3902, 777)
	agent := NewAgent(AgentConfig{EngineID: engineID, EngineBoots: boots, BootTime: clk.Now().Add(-90 * time.Second)})
	d.SetUDPService(Port, agent.Handle)
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	return f, clk, addr, engineID
}

func TestDiscoverAgainstAgent(t *testing.T) {
	f, _, addr, engineID := agentFixture(t, 5)
	v := f.Vantage("scan")

	res, ok, err := Discover(v, addr, 100, 200)
	if err != nil || !ok {
		t.Fatalf("Discover: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(res.EngineID, engineID) {
		t.Errorf("engine ID = %x, want %x", res.EngineID, engineID)
	}
	if res.EngineBoots != 5 {
		t.Errorf("boots = %d", res.EngineBoots)
	}
	if res.EngineTime != 90 {
		t.Errorf("engine time = %d, want 90", res.EngineTime)
	}
	if res.Counter != 1 {
		t.Errorf("counter = %d, want 1", res.Counter)
	}

	// Second probe increments the unknown-engine counter.
	res2, _, err := Discover(v, addr, 101, 201)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counter != 2 {
		t.Errorf("second counter = %d, want 2", res2.Counter)
	}

	// Both interfaces answer with the same engine ID — the alias property.
	res3, ok, err := Discover(v, netip.MustParseAddr("10.0.0.2"), 102, 202)
	if err != nil || !ok {
		t.Fatalf("Discover on second interface: %v", err)
	}
	if !bytes.Equal(res3.EngineID, engineID) {
		t.Error("engine ID differs across interfaces")
	}
}

func TestDiscoverNonResponders(t *testing.T) {
	f, _, addr, _ := agentFixture(t, 0)
	v := f.Vantage("scan")
	if _, ok, _ := Discover(v, netip.MustParseAddr("10.99.0.1"), 1, 1); ok {
		t.Error("unrouted address answered")
	}
	// Device exists but port 161 not served on a different device.
	clk := netsim.NewSimClock(time.Unix(0, 0))
	_ = clk
	if _, ok, _ := Discover(v, addr, 1, 1); !ok {
		t.Error("agent should answer")
	}
}

func TestAgentDropsGarbageAndNonUSM(t *testing.T) {
	agent := NewAgent(AgentConfig{EngineID: NewEngineID(1, 1)})
	if resp := agent.Handle([]byte("not ber"), netsim.ServeContext{}); resp != nil {
		t.Error("garbage should be dropped")
	}
	m := NewDiscoveryRequest(1, 1)
	m.Flags = 0 // not reportable
	if resp := agent.Handle(m.Marshal(), netsim.ServeContext{}); resp != nil {
		t.Error("non-reportable request should be dropped")
	}
	m2 := NewDiscoveryRequest(1, 1)
	m2.SecurityModel = 1
	if resp := agent.Handle(m2.Marshal(), netsim.ServeContext{}); resp != nil {
		t.Error("non-USM request should be dropped")
	}
	// Request already carrying the agent's engine ID is not a discovery.
	m3 := NewDiscoveryRequest(1, 1)
	m3.EngineID = NewEngineID(1, 1)
	if resp := agent.Handle(m3.Marshal(), netsim.ServeContext{}); resp != nil {
		t.Error("known-engine request should be dropped in this model")
	}
}

func TestUDPServiceACL(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	d, err := netsim.NewDevice(netsim.DeviceConfig{ID: "r1", Addrs: []netip.Addr{a1, a2}}, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(AgentConfig{EngineID: NewEngineID(1, 2)})
	d.SetUDPService(Port, agent.Handle, a1) // ACL: only a1 answers
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("scan")
	if _, ok, _ := Discover(v, a1, 1, 1); !ok {
		t.Error("ACL-allowed interface should answer")
	}
	if _, ok, _ := Discover(v, a2, 2, 2); ok {
		t.Error("ACL-filtered interface should not answer")
	}
	if got := d.UDPServiceAddrs(Port); len(got) != 1 || got[0] != a1 {
		t.Errorf("UDPServiceAddrs = %v", got)
	}
	if got := d.UDPServiceAddrs(999); got != nil {
		t.Errorf("UDPServiceAddrs(999) = %v", got)
	}
}
