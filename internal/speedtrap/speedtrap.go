// Package speedtrap implements the IPv6 analogue of MIDAR: Speedtrap
// (Luckie, Beverly, Brinkmeyer, claffy — IMC '13), which the paper cites as
// the IPID-family technique for IPv6. IPv6 base headers carry no
// Identification field, so Speedtrap elicits *fragmented* responses and
// samples the 32-bit Identification of the Fragment extension header; many
// routers draw those values from one shared, monotonic counter across
// interfaces.
//
// The pipeline mirrors package midar — estimation, pairwise monotonic
// bounds testing, corroboration — but over 32-bit samples (the counter
// practically never wraps between probes) and with the distinctive IPv6
// failure mode: most devices simply never send fragments, so the technique
// is even more coverage-starved than its IPv4 sibling. That scarcity is the
// paper's motivation for application-layer identifiers in IPv6.
package speedtrap

import (
	"net/netip"
	"sort"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/netsim"
)

// FragProber supplies fragment-identifier samples; netsim.Vantage
// implements it.
type FragProber interface {
	FragIDProbe(addr netip.Addr) (fragID uint32, ok bool)
}

// Sample is one fragment-ID observation.
type Sample struct {
	// T is the observation time.
	T time.Time
	// ID is the 32-bit fragment identification value.
	ID uint32
}

// Series is a time-ordered sample sequence from one address.
type Series struct {
	// Samples holds the observations in probe order.
	Samples []Sample
}

// Velocity estimates counter speed in IDs/second. ok is false for series
// too short or spanning no time. A 32-bit counter is assumed not to wrap
// between consecutive probes (it would need >4e9 packets in one interval).
func (s Series) Velocity() (idsPerSec float64, ok bool) {
	if len(s.Samples) < 2 {
		return 0, false
	}
	first, last := s.Samples[0], s.Samples[len(s.Samples)-1]
	dur := last.T.Sub(first.T).Seconds()
	if dur <= 0 {
		return 0, false
	}
	return float64(last.ID-first.ID) / dur, true
}

// monotonic reports whether the series never decreases (mod 2^32 wrap-free
// assumption).
func (s Series) monotonic() bool {
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i].ID < s.Samples[i-1].ID {
			return false
		}
	}
	return true
}

// Class is the estimation verdict; the values parallel midar.Class but the
// dominant one in IPv6 is ClassNoFragments.
type Class int

const (
	// ClassNoFragments: the target never answered with fragments.
	ClassNoFragments Class = iota
	// ClassNonMonotonic: fragment IDs observed but not from a counter.
	ClassNonMonotonic
	// ClassConstant: fragment IDs never advance.
	ClassConstant
	// ClassTooFast: counter too fast to bound.
	ClassTooFast
	// ClassUsable: a trackable shared-looking counter.
	ClassUsable
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNoFragments:
		return "no-fragments"
	case ClassNonMonotonic:
		return "non-monotonic"
	case ClassConstant:
		return "constant"
	case ClassTooFast:
		return "too-fast"
	case ClassUsable:
		return "usable"
	default:
		return "unknown"
	}
}

// Classify applies the estimation filter.
func Classify(s Series, maxVelocity float64) Class {
	if len(s.Samples) < 3 {
		return ClassNoFragments
	}
	if !s.monotonic() {
		return ClassNonMonotonic
	}
	v, ok := s.Velocity()
	if !ok {
		return ClassNoFragments
	}
	if v == 0 {
		return ClassConstant
	}
	if v > maxVelocity {
		return ClassTooFast
	}
	return ClassUsable
}

// MBT is the 32-bit monotonic bounds test: merged in time order, every step
// must be non-negative and within what the faster counter could have
// produced.
func MBT(a, b Series, vmax, margin float64) bool {
	if len(a.Samples) < 2 || len(b.Samples) < 2 {
		return false
	}
	type timed struct {
		Sample
		src int
	}
	merged := make([]timed, 0, len(a.Samples)+len(b.Samples))
	for _, s := range a.Samples {
		merged = append(merged, timed{s, 0})
	}
	for _, s := range b.Samples {
		merged = append(merged, timed{s, 1})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].T.Before(merged[j].T) })
	cross := false
	for i := 1; i < len(merged); i++ {
		prev, cur := merged[i-1], merged[i]
		if cur.ID < prev.ID {
			return false
		}
		dt := cur.T.Sub(prev.T).Seconds()
		if float64(cur.ID-prev.ID) > vmax*dt*2+margin {
			return false
		}
		if prev.src != cur.src {
			cross = true
		}
	}
	return cross
}

// Config tunes the pipeline.
type Config struct {
	// Rounds is the number of interleaved probe rounds.
	Rounds int
	// Interval is the (simulated) probe spacing.
	Interval time.Duration
	// MaxVelocity caps usable counter speed.
	MaxVelocity float64
	// Margin is the bounds-test slack.
	Margin float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MaxVelocity <= 0 {
		c.MaxVelocity = 10000
	}
	if c.Margin <= 0 {
		c.Margin = 64
	}
	return c
}

// Session binds a prober to the simulation clock.
type Session struct {
	prober FragProber
	clock  *netsim.SimClock
	cfg    Config
}

// NewSession builds a session.
func NewSession(p FragProber, clock *netsim.SimClock, cfg Config) *Session {
	return &Session{prober: p, clock: clock, cfg: cfg.withDefaults()}
}

// now returns simulated time.
func (s *Session) now() time.Time {
	if s.clock == nil {
		return time.Time{}
	}
	return s.clock.Now()
}

// tick advances simulated time by one probe interval.
func (s *Session) tick() {
	if s.clock != nil {
		s.clock.Advance(s.cfg.Interval)
	}
}

// SampleSet collects interleaved fragment-ID series for candidate addresses.
func (s *Session) SampleSet(addrs []netip.Addr) map[netip.Addr]Series {
	out := make(map[netip.Addr]Series, len(addrs))
	for r := 0; r < s.cfg.Rounds; r++ {
		for _, a := range addrs {
			if id, ok := s.prober.FragIDProbe(a); ok {
				sr := out[a]
				sr.Samples = append(sr.Samples, Sample{T: s.now(), ID: id})
				out[a] = sr
			}
			s.tick()
		}
	}
	return out
}

// Outcome parallels midar.SetOutcome.
type Outcome int

const (
	// OutcomeUnverifiable: fewer than two usable counters.
	OutcomeUnverifiable Outcome = iota
	// OutcomeConfirmed: one consistent group covering all usable addresses.
	OutcomeConfirmed
	// OutcomeSplit: the candidate set fractured.
	OutcomeSplit
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeUnverifiable:
		return "unverifiable"
	case OutcomeConfirmed:
		return "confirmed"
	case OutcomeSplit:
		return "split"
	default:
		return "unknown"
	}
}

// Result is the verdict for one candidate IPv6 alias set.
type Result struct {
	// Candidate is the set under test.
	Candidate alias.Set
	// Outcome is the verdict.
	Outcome Outcome
	// UsableAddrs passed estimation.
	UsableAddrs []netip.Addr
	// Partition is Speedtrap's own grouping of the usable addresses.
	Partition []alias.Set
}

// VerifySet runs estimation and pairwise bounds testing on one candidate
// IPv6 alias set.
func (s *Session) VerifySet(candidate alias.Set) Result {
	res := Result{Candidate: candidate}
	series := s.SampleSet(candidate.Addrs)
	velocities := map[netip.Addr]float64{}
	for _, a := range candidate.Addrs {
		sr := series[a]
		if Classify(sr, s.cfg.MaxVelocity) != ClassUsable {
			continue
		}
		v, _ := sr.Velocity()
		res.UsableAddrs = append(res.UsableAddrs, a)
		velocities[a] = v
	}
	if len(res.UsableAddrs) < 2 {
		res.Outcome = OutcomeUnverifiable
		return res
	}
	n := len(res.UsableAddrs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ai, aj := res.UsableAddrs[i], res.UsableAddrs[j]
			vmax := velocities[ai]
			if velocities[aj] > vmax {
				vmax = velocities[aj]
			}
			if MBT(series[ai], series[aj], vmax, s.cfg.Margin) {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]netip.Addr{}
	for i, a := range res.UsableAddrs {
		groups[find(i)] = append(groups[find(i)], a)
	}
	for _, g := range groups {
		res.Partition = append(res.Partition, alias.NewSet(g...))
	}
	if len(res.Partition) == 1 && res.Partition[0].Size() == n {
		res.Outcome = OutcomeConfirmed
	} else {
		res.Outcome = OutcomeSplit
	}
	return res
}
