package speedtrap

import (
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/netsim"
)

// v6World builds IPv6 devices of assorted temperaments.
func v6World(t *testing.T) (*netsim.Fabric, *netsim.SimClock) {
	t.Helper()
	clk := netsim.NewSimClock(time.Unix(70000, 0))
	f := netsim.New(clk)
	add := func(id string, model netsim.IPIDModel, vel float64, frag bool, addrs ...string) {
		var as []netip.Addr
		for _, s := range addrs {
			as = append(as, netip.MustParseAddr(s))
		}
		d, err := netsim.NewDevice(netsim.DeviceConfig{
			ID: id, Addrs: as, IPID: model, IPIDVelocity: vel,
			IPIDSeed: 777, Pingable: true, EmitsFragmentIDs: frag,
		}, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	add("r1", netsim.IPIDSharedMonotonic, 30, true, "2a00:1::1", "2a00:1::2", "2a00:1::3")
	add("r2", netsim.IPIDSharedMonotonic, 55, true, "2a00:2::1", "2a00:2::2")
	add("r3", netsim.IPIDRandom, 0, true, "2a00:3::1", "2a00:3::2")
	add("r4", netsim.IPIDSharedMonotonic, 20, false, "2a00:4::1", "2a00:4::2") // atomic-only
	add("r5", netsim.IPIDZero, 0, true, "2a00:5::1")
	// A dual-stack device: the v4 address must never answer frag probes.
	add("r6", netsim.IPIDSharedMonotonic, 10, true, "10.6.0.1", "2a00:6::1")
	return f, clk
}

func addrs(ss ...string) []netip.Addr {
	var out []netip.Addr
	for _, s := range ss {
		out = append(out, netip.MustParseAddr(s))
	}
	return out
}

func TestFragProbeGating(t *testing.T) {
	f, _ := v6World(t)
	v := f.Vantage("st")
	if _, ok := v.FragIDProbe(netip.MustParseAddr("2a00:1::1")); !ok {
		t.Error("frag emitter did not answer")
	}
	if _, ok := v.FragIDProbe(netip.MustParseAddr("2a00:4::1")); ok {
		t.Error("non-emitter answered")
	}
	if _, ok := v.FragIDProbe(netip.MustParseAddr("10.6.0.1")); ok {
		t.Error("IPv4 address answered a Speedtrap probe")
	}
	if _, ok := v.FragIDProbe(netip.MustParseAddr("2a00:99::1")); ok {
		t.Error("unrouted address answered")
	}
}

func TestVerifyConfirmsSharedCounter(t *testing.T) {
	f, clk := v6World(t)
	s := NewSession(f.Vantage("st"), clk, Config{})
	res := s.VerifySet(alias.NewSet(addrs("2a00:1::1", "2a00:1::2", "2a00:1::3")...))
	if res.Outcome != OutcomeConfirmed {
		t.Errorf("outcome = %v, partition %v", res.Outcome, res.Partition)
	}
	if len(res.UsableAddrs) != 3 {
		t.Errorf("usable = %d", len(res.UsableAddrs))
	}
}

func TestVerifySplitsCrossDevice(t *testing.T) {
	f, clk := v6World(t)
	s := NewSession(f.Vantage("st"), clk, Config{})
	res := s.VerifySet(alias.NewSet(addrs("2a00:1::1", "2a00:2::1")...))
	if res.Outcome != OutcomeSplit {
		t.Errorf("cross-device outcome = %v", res.Outcome)
	}
}

func TestVerifyUnverifiablePopulations(t *testing.T) {
	f, clk := v6World(t)
	s := NewSession(f.Vantage("st"), clk, Config{})
	for _, set := range []alias.Set{
		alias.NewSet(addrs("2a00:3::1", "2a00:3::2")...), // random IDs
		alias.NewSet(addrs("2a00:4::1", "2a00:4::2")...), // no fragments
		alias.NewSet(addrs("2a00:5::1", "2a00:1::1")...), // constant + one usable
	} {
		if res := s.VerifySet(set); res.Outcome != OutcomeUnverifiable {
			t.Errorf("set %v outcome = %v, want unverifiable", set.Addrs, res.Outcome)
		}
	}
}

func TestClassify(t *testing.T) {
	base := time.Unix(0, 0)
	mk := func(ids ...uint32) Series {
		var s Series
		for i, id := range ids {
			s.Samples = append(s.Samples, Sample{T: base.Add(time.Duration(i) * time.Second), ID: id})
		}
		return s
	}
	cases := []struct {
		s    Series
		want Class
	}{
		{mk(), ClassNoFragments},
		{mk(1, 2), ClassNoFragments},
		{mk(10, 20, 30), ClassUsable},
		{mk(10, 5, 30), ClassNonMonotonic},
		{mk(7, 7, 7), ClassConstant},
		{mk(0, 1<<20, 1<<21), ClassTooFast},
	}
	for i, c := range cases {
		if got := Classify(c.s, 10000); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestMBT32(t *testing.T) {
	base := time.Unix(0, 0)
	a := Series{Samples: []Sample{
		{T: base, ID: 100}, {T: base.Add(2 * time.Second), ID: 120},
		{T: base.Add(4 * time.Second), ID: 140},
	}}
	good := Series{Samples: []Sample{
		{T: base.Add(time.Second), ID: 110}, {T: base.Add(3 * time.Second), ID: 130},
	}}
	if !MBT(a, good, 10, 64) {
		t.Error("consistent counters rejected")
	}
	bad := Series{Samples: []Sample{
		{T: base.Add(time.Second), ID: 5_000_000}, {T: base.Add(3 * time.Second), ID: 5_000_020},
	}}
	if MBT(a, bad, 10, 64) {
		t.Error("divergent counters accepted")
	}
	if MBT(Series{}, good, 10, 64) {
		t.Error("empty series accepted")
	}
}

func TestStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassNoFragments: "no-fragments", ClassNonMonotonic: "non-monotonic",
		ClassConstant: "constant", ClassTooFast: "too-fast",
		ClassUsable: "usable", Class(9): "unknown",
	} {
		if c.String() != want {
			t.Errorf("Class %d = %q", c, c.String())
		}
	}
	for o, want := range map[Outcome]string{
		OutcomeUnverifiable: "unverifiable", OutcomeConfirmed: "confirmed",
		OutcomeSplit: "split", Outcome(9): "unknown",
	} {
		if o.String() != want {
			t.Errorf("Outcome %d = %q", o, o.String())
		}
	}
}
