package sshwire

// Algorithms is the symmetric algorithm offer of one SSH implementation: the
// preference-ordered lists that go into the KEXINIT name-lists. Client-to-
// server and server-to-client directions are almost universally identical in
// real implementations, so one list per category suffices; the KEXINIT
// builder duplicates them into both directions.
type Algorithms struct {
	// Kex lists key-exchange methods in preference order.
	Kex []string
	// HostKey lists host key algorithms in preference order.
	HostKey []string
	// Encryption lists ciphers in preference order.
	Encryption []string
	// MAC lists message authentication codes in preference order.
	MAC []string
	// Compression lists compression methods in preference order.
	Compression []string
}

// Clone returns a deep copy, used when deriving per-interface variants.
func (a Algorithms) Clone() Algorithms {
	cp := func(s []string) []string { return append([]string(nil), s...) }
	return Algorithms{
		Kex:         cp(a.Kex),
		HostKey:     cp(a.HostKey),
		Encryption:  cp(a.Encryption),
		MAC:         cp(a.MAC),
		Compression: cp(a.Compression),
	}
}

// KexInit renders the offer as a KEXINIT message with the given cookie.
func (a Algorithms) KexInit(cookie [16]byte) *KexInit {
	return &KexInit{
		Cookie:                    cookie,
		KexAlgorithms:             a.Kex,
		ServerHostKeyAlgorithms:   a.HostKey,
		EncryptionClientToServer:  a.Encryption,
		EncryptionServerToClient:  a.Encryption,
		MACClientToServer:         a.MAC,
		MACServerToClient:         a.MAC,
		CompressionClientToServer: a.Compression,
		CompressionServerToClient: a.Compression,
	}
}

// Profile bundles a banner with an algorithm offer: one SSH software
// personality. The simulated world assigns profiles to devices; the scanner
// never sees profiles, only their wire image.
type Profile struct {
	// Name is a stable profile label.
	Name string
	// Banner is the identification string sent after the TCP handshake.
	Banner string
	// Algorithms is the KEXINIT offer.
	Algorithms Algorithms
}

// Built-in profiles modelled on widely deployed server implementations. The
// exact lists matter less than their diversity and stable ordering: the
// paper's identifier treats them as opaque ordered strings. Every profile
// supports curve25519-sha256 and ssh-ed25519 — this repository's uniform key
// exchange — which stands in for ZGrab2's broader algorithm support.
var Profiles = []Profile{
	{
		Name:   "openssh-9.2-debian",
		Banner: "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3",
		Algorithms: Algorithms{
			Kex: []string{
				"sntrup761x25519-sha512@openssh.com", KexCurve25519, KexCurve25519LibSSH,
				"ecdh-sha2-nistp256", "ecdh-sha2-nistp384", "ecdh-sha2-nistp521",
				"diffie-hellman-group-exchange-sha256", "diffie-hellman-group16-sha512",
				"diffie-hellman-group18-sha512", "diffie-hellman-group14-sha256",
			},
			HostKey: []string{"rsa-sha2-512", "rsa-sha2-256", "ecdsa-sha2-nistp256", HostKeyEd25519},
			Encryption: []string{
				"chacha20-poly1305@openssh.com", "aes128-ctr", "aes192-ctr", "aes256-ctr",
				"aes128-gcm@openssh.com", "aes256-gcm@openssh.com",
			},
			MAC: []string{
				"umac-64-etm@openssh.com", "umac-128-etm@openssh.com",
				"hmac-sha2-256-etm@openssh.com", "hmac-sha2-512-etm@openssh.com",
				"hmac-sha1-etm@openssh.com", "umac-64@openssh.com", "umac-128@openssh.com",
				"hmac-sha2-256", "hmac-sha2-512", "hmac-sha1",
			},
			Compression: []string{"none", "zlib@openssh.com"},
		},
	},
	{
		Name:   "openssh-8.9-ubuntu",
		Banner: "SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.10",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, KexCurve25519LibSSH, "ecdh-sha2-nistp256",
				"ecdh-sha2-nistp384", "ecdh-sha2-nistp521",
				"diffie-hellman-group-exchange-sha256", "diffie-hellman-group16-sha512",
				"diffie-hellman-group18-sha512", "diffie-hellman-group14-sha256",
			},
			HostKey: []string{"rsa-sha2-512", "rsa-sha2-256", "ecdsa-sha2-nistp256", HostKeyEd25519},
			Encryption: []string{
				"chacha20-poly1305@openssh.com", "aes128-ctr", "aes192-ctr", "aes256-ctr",
				"aes128-gcm@openssh.com", "aes256-gcm@openssh.com",
			},
			MAC: []string{
				"umac-64-etm@openssh.com", "umac-128-etm@openssh.com",
				"hmac-sha2-256-etm@openssh.com", "hmac-sha2-512-etm@openssh.com",
				"hmac-sha1-etm@openssh.com", "umac-64@openssh.com", "umac-128@openssh.com",
				"hmac-sha2-256", "hmac-sha2-512", "hmac-sha1",
			},
			Compression: []string{"none", "zlib@openssh.com"},
		},
	},
	{
		Name:   "openssh-7.4-centos",
		Banner: "SSH-2.0-OpenSSH_7.4",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, KexCurve25519LibSSH, "ecdh-sha2-nistp256",
				"ecdh-sha2-nistp384", "ecdh-sha2-nistp521",
				"diffie-hellman-group-exchange-sha256", "diffie-hellman-group16-sha512",
				"diffie-hellman-group18-sha512", "diffie-hellman-group-exchange-sha1",
				"diffie-hellman-group14-sha256", "diffie-hellman-group14-sha1", "diffie-hellman-group1-sha1",
			},
			HostKey:    []string{"ssh-rsa", "rsa-sha2-512", "rsa-sha2-256", "ecdsa-sha2-nistp256", HostKeyEd25519},
			Encryption: []string{"chacha20-poly1305@openssh.com", "aes128-ctr", "aes192-ctr", "aes256-ctr"},
			MAC: []string{
				"umac-64-etm@openssh.com", "umac-128-etm@openssh.com",
				"hmac-sha2-256-etm@openssh.com", "hmac-sha2-512-etm@openssh.com",
				"hmac-sha1-etm@openssh.com", "hmac-sha2-256", "hmac-sha2-512", "hmac-sha1",
			},
			Compression: []string{"none", "zlib@openssh.com"},
		},
	},
	{
		Name:   "dropbear-2022",
		Banner: "SSH-2.0-dropbear_2022.83",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, KexCurve25519LibSSH, "ecdh-sha2-nistp521",
				"ecdh-sha2-nistp384", "ecdh-sha2-nistp256",
				"diffie-hellman-group14-sha256", "diffie-hellman-group14-sha1",
				"kexguess2@matt.ucc.asn.au",
			},
			HostKey:     []string{HostKeyEd25519, "ecdsa-sha2-nistp256", "rsa-sha2-256", "ssh-rsa"},
			Encryption:  []string{"chacha20-poly1305@openssh.com", "aes128-ctr", "aes256-ctr"},
			MAC:         []string{"hmac-sha2-256", "hmac-sha1"},
			Compression: []string{"none"},
		},
	},
	{
		Name:   "cisco-ios-xe",
		Banner: "SSH-2.0-Cisco-1.25",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, "ecdh-sha2-nistp256", "ecdh-sha2-nistp384", "ecdh-sha2-nistp521",
				"diffie-hellman-group14-sha256", "diffie-hellman-group14-sha1",
			},
			HostKey:     []string{HostKeyEd25519, "rsa-sha2-512", "rsa-sha2-256", "ssh-rsa"},
			Encryption:  []string{"aes128-gcm@openssh.com", "aes256-gcm@openssh.com", "aes128-ctr", "aes192-ctr", "aes256-ctr"},
			MAC:         []string{"hmac-sha2-256", "hmac-sha2-512", "hmac-sha1"},
			Compression: []string{"none"},
		},
	},
	{
		Name:   "mikrotik-routeros",
		Banner: "SSH-2.0-ROSSSH",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, "ecdh-sha2-nistp256", "diffie-hellman-group14-sha256",
				"diffie-hellman-group14-sha1", "diffie-hellman-group1-sha1",
			},
			HostKey:     []string{HostKeyEd25519, "rsa-sha2-256", "ssh-rsa"},
			Encryption:  []string{"aes128-ctr", "aes192-ctr", "aes256-ctr", "aes128-cbc", "3des-cbc"},
			MAC:         []string{"hmac-sha2-256", "hmac-sha1", "hmac-md5"},
			Compression: []string{"none"},
		},
	},
	{
		Name:   "juniper-junos",
		Banner: "SSH-2.0-OpenSSH_7.5 FIPS",
		Algorithms: Algorithms{
			Kex: []string{
				KexCurve25519, "ecdh-sha2-nistp256", "ecdh-sha2-nistp384",
				"diffie-hellman-group-exchange-sha256", "diffie-hellman-group14-sha256",
			},
			HostKey:     []string{HostKeyEd25519, "ecdsa-sha2-nistp256", "rsa-sha2-512", "ssh-rsa"},
			Encryption:  []string{"aes128-ctr", "aes192-ctr", "aes256-ctr", "aes128-gcm@openssh.com"},
			MAC:         []string{"hmac-sha2-256", "hmac-sha2-512", "hmac-sha1"},
			Compression: []string{"none", "zlib@openssh.com"},
		},
	},
}

// ProfileByName returns the built-in profile with the given name, or nil.
func ProfileByName(name string) *Profile {
	for i := range Profiles {
		if Profiles[i].Name == name {
			return &Profiles[i]
		}
	}
	return nil
}

// DefaultClientAlgorithms is the scanner's offer. Host keys are restricted to
// ssh-ed25519 so negotiation always lands on the one host-key algorithm this
// repository implements; the kex list leads with curve25519.
func DefaultClientAlgorithms() Algorithms {
	return Algorithms{
		Kex:         []string{KexCurve25519, KexCurve25519LibSSH},
		HostKey:     []string{HostKeyEd25519},
		Encryption:  []string{"chacha20-poly1305@openssh.com", "aes128-ctr", "aes256-ctr"},
		MAC:         []string{"hmac-sha2-256", "hmac-sha2-512", "hmac-sha1"},
		Compression: []string{"none"},
	}
}
