package sshwire

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"time"
)

// ScanResult is what one SSH service scan of a single address yields: the
// raw material for the paper's two-part SSH identifier (banner + algorithm
// capabilities, and the server host key).
type ScanResult struct {
	// Banner is the server's identification string without CRLF.
	Banner string
	// KexInit is the server's algorithm announcement.
	KexInit *KexInit
	// HostKeyAlgo is the negotiated host key algorithm, empty if key
	// exchange never completed.
	HostKeyAlgo string
	// HostKeyBlob is the server's public host key in SSH blob format.
	HostKeyBlob []byte
	// HostKeyFingerprint is the OpenSSH-style SHA256 fingerprint of the
	// blob, the canonical key form used by the alias pipeline.
	HostKeyFingerprint string
	// SignatureValid reports whether the server proved possession of the
	// host key by a correct signature over the exchange hash.
	SignatureValid bool
	// KexCompleted reports whether the key exchange ran to ECDH_REPLY.
	KexCompleted bool
}

// HasIdentifierMaterial reports whether the scan captured both identifier
// halves the paper combines: capabilities and host key.
func (r *ScanResult) HasIdentifierMaterial() bool {
	return r != nil && r.Banner != "" && r.KexInit != nil && len(r.HostKeyBlob) > 0
}

// ScanConfig parameterises a client scan.
type ScanConfig struct {
	// Banner is the client identification string; empty selects a default.
	Banner string
	// Algorithms is the client offer; zero value selects
	// DefaultClientAlgorithms.
	Algorithms Algorithms
	// Rand supplies cookie and ephemeral-key entropy; nil means crypto/rand.
	Rand io.Reader
	// Timeout bounds the whole exchange; zero means 5s.
	Timeout time.Duration
}

// DefaultClientBanner identifies the scanner, following the convention of
// announcing tool and version.
const DefaultClientBanner = "SSH-2.0-AliasLimitScan_0.9"

// Scan runs the plaintext phase of SSH against an established connection and
// collects identifier material. It always closes conn. The returned result
// is non-nil whenever the server sent a valid banner, even if later stages
// failed: a banner plus KEXINIT is still half an identifier, and the paper's
// pipeline records partial observations.
func Scan(conn net.Conn, cfg ScanConfig) (*ScanResult, error) {
	if cfg.Banner == "" {
		cfg.Banner = DefaultClientBanner
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	emptyAlgos := len(cfg.Algorithms.Kex) == 0 && len(cfg.Algorithms.HostKey) == 0
	if emptyAlgos {
		cfg.Algorithms = DefaultClientAlgorithms()
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(cfg.Timeout))

	br := bufio.NewReader(conn)
	serverBanner, err := ReadBanner(br)
	if err != nil {
		return nil, fmt.Errorf("sshwire: reading banner: %w", err)
	}
	res := &ScanResult{Banner: serverBanner}
	if err := WriteBanner(conn, cfg.Banner); err != nil {
		return res, err
	}

	serverKexInitPayload, err := readNonTrivialPacket(br)
	if err != nil {
		return res, fmt.Errorf("sshwire: reading server KEXINIT: %w", err)
	}
	sk, err := ParseKexInit(serverKexInitPayload)
	if err != nil {
		return res, err
	}
	res.KexInit = sk

	var cookie [16]byte
	if _, err := io.ReadFull(cfg.Rand, cookie[:]); err != nil {
		return res, err
	}
	clientKexInitPayload := cfg.Algorithms.KexInit(cookie).Marshal()
	if err := WritePacket(conn, clientKexInitPayload); err != nil {
		return res, err
	}

	kexAlgo, okKex := negotiate(cfg.Algorithms.Kex, sk.KexAlgorithms)
	hostKeyAlgo, okHK := negotiate(cfg.Algorithms.HostKey, sk.ServerHostKeyAlgorithms)
	if !okKex || !okHK {
		// No common algorithms: the capabilities half of the identifier is
		// all this target yields. Not an error — a finding.
		return res, nil
	}
	_ = kexAlgo

	eph, err := generateX25519(cfg.Rand)
	if err != nil {
		return res, err
	}
	qc := eph.PublicKey().Bytes()
	if err := WritePacket(conn, marshalECDHInit(qc)); err != nil {
		return res, err
	}

	replyPayload, err := readNonTrivialPacket(br)
	if err != nil {
		return res, fmt.Errorf("sshwire: reading ECDH reply: %w", err)
	}
	if len(replyPayload) > 0 && replyPayload[0] == MsgDisconnect {
		return res, nil // server bowed out; keep partial result
	}
	ks, qs, sigBlob, err := parseECDHReply(replyPayload)
	if err != nil {
		return res, err
	}
	res.KexCompleted = true
	res.HostKeyBlob = append([]byte(nil), ks...)
	res.HostKeyFingerprint = Fingerprint(ks)
	algo, _, err := ParsePublicKeyBlob(ks)
	if err == nil {
		res.HostKeyAlgo = algo
	}
	if hostKeyAlgo == HostKeyEd25519 && algo == HostKeyEd25519 {
		shared, err := x25519Shared(eph, qs)
		if err == nil {
			h := exchangeHash(cfg.Banner, serverBanner,
				clientKexInitPayload, serverKexInitPayload, ks, qc, qs, shared)
			res.SignatureValid = ed25519Verify(ks, h, sigBlob)
		}
	}

	// Finish politely: consume the server's NEWKEYS (which may already be
	// in flight — on an unbuffered transport an unread write would wedge
	// both sides), then answer with our own and disconnect.
	_, _ = readNonTrivialPacket(br)
	_ = WritePacket(conn, []byte{MsgNewKeys})
	return res, nil
}

// ed25519Verify recomputes nothing itself: it checks the server's signature
// blob over the already-computed exchange hash, proving the responder holds
// the advertised host key.
func ed25519Verify(ks []byte, h []byte, sigBlob []byte) bool {
	pub, err := ParseEd25519PublicKey(ks)
	if err != nil {
		return false
	}
	algo, sig, err := ParseSignatureBlob(sigBlob)
	if err != nil || algo != HostKeyEd25519 {
		return false
	}
	return ed25519.Verify(pub, h, sig)
}
