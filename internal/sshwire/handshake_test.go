package sshwire

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"net"
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/netsim"
	"aliaslimit/internal/xrand"
)

// detRand adapts a SplitMix64 stream to io.Reader for deterministic keys.
type detRand struct{ s *xrand.SplitMix64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: xrand.NewSplitMix64(seed)} }

func (r *detRand) Read(p []byte) (int, error) {
	var buf [8]byte
	for i := 0; i < len(p); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], r.s.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

func testHostKey(t testing.TB, seed uint64) ed25519.PrivateKey {
	t.Helper()
	_, priv, err := GenerateEd25519(newDetRand(seed))
	if err != nil {
		t.Fatalf("GenerateEd25519: %v", err)
	}
	return priv
}

// runHandshake wires a server to one end of a pipe and scans the other.
func runHandshake(t *testing.T, srvCfg ServerConfig, cliCfg ScanConfig) (*ScanResult, error) {
	t.Helper()
	client, server := net.Pipe()
	go NewServer(srvCfg).Serve(server, netsim.ServeContext{LocalAddr: netip.MustParseAddr("192.0.2.1")})
	return Scan(client, cliCfg)
}

func TestFullHandshake(t *testing.T) {
	for _, p := range Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			key := testHostKey(t, 1)
			res, err := runHandshake(t, ServerConfig{
				Banner:     p.Banner,
				Algorithms: p.Algorithms,
				HostKey:    key,
				Rand:       newDetRand(2),
			}, ScanConfig{Rand: newDetRand(3), Timeout: 2 * time.Second})
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if !res.HasIdentifierMaterial() {
				t.Fatalf("missing identifier material: %+v", res)
			}
			if res.Banner != p.Banner {
				t.Errorf("banner = %q, want %q", res.Banner, p.Banner)
			}
			if !res.KexCompleted {
				t.Error("kex did not complete")
			}
			if res.HostKeyAlgo != HostKeyEd25519 {
				t.Errorf("host key algo = %q", res.HostKeyAlgo)
			}
			if !res.SignatureValid {
				t.Error("host key signature did not verify")
			}
			wantBlob := MarshalEd25519PublicKey(key.Public().(ed25519.PublicKey))
			if !bytes.Equal(res.HostKeyBlob, wantBlob) {
				t.Error("host key blob mismatch")
			}
			if res.HostKeyFingerprint != Fingerprint(wantBlob) {
				t.Error("fingerprint mismatch")
			}
			// The server's preference-ordered lists must arrive verbatim:
			// they are the first half of the paper's identifier.
			if got, want := res.KexInit.KexAlgorithms, p.Algorithms.Kex; !equalStrings(got, want) {
				t.Errorf("kex list = %v, want %v", got, want)
			}
			if got, want := res.KexInit.MACServerToClient, p.Algorithms.MAC; !equalStrings(got, want) {
				t.Errorf("mac list = %v, want %v", got, want)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSameKeyDifferentInterfacesSameFingerprint(t *testing.T) {
	// The whole premise of the paper's SSH identifier: one host, many
	// addresses, a single host key.
	key := testHostKey(t, 7)
	p := Profiles[0]
	var fps []string
	for i := 0; i < 3; i++ {
		res, err := runHandshake(t, ServerConfig{
			Banner: p.Banner, Algorithms: p.Algorithms, HostKey: key, Rand: newDetRand(uint64(10 + i)),
		}, ScanConfig{Rand: newDetRand(uint64(20 + i))})
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, res.HostKeyFingerprint)
	}
	if fps[0] != fps[1] || fps[1] != fps[2] {
		t.Errorf("fingerprints differ across connections: %v", fps)
	}
}

func TestDifferentKeysDifferentFingerprints(t *testing.T) {
	p := Profiles[0]
	mk := func(seed uint64) string {
		res, err := runHandshake(t, ServerConfig{
			Banner: p.Banner, Algorithms: p.Algorithms, HostKey: testHostKey(t, seed), Rand: newDetRand(seed + 100),
		}, ScanConfig{Rand: newDetRand(seed + 200)})
		if err != nil {
			t.Fatal(err)
		}
		return res.HostKeyFingerprint
	}
	if mk(1) == mk(2) {
		t.Error("distinct host keys produced identical fingerprints")
	}
}

func TestPerInterfaceAlgorithmVariation(t *testing.T) {
	// Models the paper's 0.4% of hosts whose capability sets differ across
	// interfaces: same key, different KEXINIT per address.
	key := testHostKey(t, 5)
	p := Profiles[1]
	varied := p.Algorithms.Clone()
	varied.MAC = varied.MAC[:len(varied.MAC)-2]
	special := netip.MustParseAddr("192.0.2.1")
	cfg := ServerConfig{
		Banner:  p.Banner,
		HostKey: key,
		Rand:    newDetRand(1),
		AlgorithmsFor: func(a netip.Addr) Algorithms {
			if a == special {
				return varied
			}
			return p.Algorithms
		},
	}

	scanAt := func(addr netip.Addr) *ScanResult {
		client, server := net.Pipe()
		go NewServer(cfg).Serve(server, netsim.ServeContext{LocalAddr: addr})
		res, err := Scan(client, ScanConfig{Rand: newDetRand(9)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := scanAt(special)
	r2 := scanAt(netip.MustParseAddr("192.0.2.2"))
	if equalStrings(r1.KexInit.MACServerToClient, r2.KexInit.MACServerToClient) {
		t.Error("per-interface variation not visible in KEXINIT")
	}
	if r1.HostKeyFingerprint != r2.HostKeyFingerprint {
		t.Error("host key should be identical across interfaces")
	}
}

func TestNoCommonAlgorithmsYieldsPartialResult(t *testing.T) {
	p := Profiles[0]
	key := testHostKey(t, 3)
	res, err := runHandshake(t, ServerConfig{
		Banner: p.Banner, Algorithms: p.Algorithms, HostKey: key, Rand: newDetRand(4),
	}, ScanConfig{
		Rand: newDetRand(5),
		Algorithms: Algorithms{
			Kex:         []string{"diffie-hellman-group1-sha1"},
			HostKey:     []string{"ssh-dss"},
			Encryption:  []string{"3des-cbc"},
			MAC:         []string{"hmac-md5"},
			Compression: []string{"none"},
		},
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if res.Banner != p.Banner || res.KexInit == nil {
		t.Error("partial result should still carry banner and KEXINIT")
	}
	if res.KexCompleted || len(res.HostKeyBlob) != 0 {
		t.Error("no-common-algorithms must not complete kex")
	}
	if res.HasIdentifierMaterial() {
		t.Error("partial result must not claim full identifier material")
	}
}

func TestScanAgainstGarbageServer(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		server.Write([]byte("220 smtp.example.net ESMTP\r\n"))
		buf := make([]byte, 64)
		server.Read(buf)
	}()
	if _, err := Scan(client, ScanConfig{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("SMTP banner should fail the SSH scan")
	}
}

func TestScanTimeoutOnSilentServer(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	start := time.Now()
	_, err := Scan(client, ScanConfig{Timeout: 100 * time.Millisecond})
	if err == nil {
		t.Error("silent server: want error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout not respected")
	}
}

func TestHostKeyBlobCodec(t *testing.T) {
	key := testHostKey(t, 11)
	pub := key.Public().(ed25519.PublicKey)
	blob := MarshalEd25519PublicKey(pub)

	algo, raw, err := ParsePublicKeyBlob(blob)
	if err != nil || algo != HostKeyEd25519 {
		t.Fatalf("ParsePublicKeyBlob: %v %q", err, algo)
	}
	if len(raw) != 4+ed25519.PublicKeySize {
		t.Errorf("raw remainder length = %d", len(raw))
	}
	got, err := ParseEd25519PublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pub) {
		t.Error("round-tripped key differs")
	}

	if _, err := ParseEd25519PublicKey(append(blob, 0)); err == nil {
		t.Error("trailing bytes: want error")
	}
	wrong := AppendString(nil, []byte("ssh-rsa"))
	wrong = AppendString(wrong, make([]byte, 32))
	if _, err := ParseEd25519PublicKey(wrong); err == nil {
		t.Error("wrong algorithm: want error")
	}
	shortKey := AppendString(nil, []byte(HostKeyEd25519))
	shortKey = AppendString(shortKey, make([]byte, 16))
	if _, err := ParseEd25519PublicKey(shortKey); err == nil {
		t.Error("short key: want error")
	}
}

func TestSignatureBlobCodec(t *testing.T) {
	sig := make([]byte, ed25519.SignatureSize)
	blob := MarshalEd25519Signature(sig)
	algo, got, err := ParseSignatureBlob(blob)
	if err != nil || algo != HostKeyEd25519 || !bytes.Equal(got, sig) {
		t.Errorf("signature blob round trip failed: %v %q", err, algo)
	}
	if _, _, err := ParseSignatureBlob(blob[:5]); err == nil {
		t.Error("truncated signature blob: want error")
	}
	if _, _, err := ParseSignatureBlob(append(blob, 1)); err == nil {
		t.Error("trailing bytes: want error")
	}
}

func TestFingerprintFormat(t *testing.T) {
	fp := Fingerprint([]byte("some blob"))
	if len(fp) < 8 || fp[:7] != "SHA256:" {
		t.Errorf("fingerprint = %q, want SHA256: prefix", fp)
	}
	if fp != Fingerprint([]byte("some blob")) {
		t.Error("fingerprint not deterministic")
	}
}

func TestExchangeHashSensitivity(t *testing.T) {
	base := exchangeHash("VC", "VS", []byte("IC"), []byte("IS"), []byte("KS"), []byte("QC"), []byte("QS"), []byte{1})
	variants := [][]byte{
		exchangeHash("VX", "VS", []byte("IC"), []byte("IS"), []byte("KS"), []byte("QC"), []byte("QS"), []byte{1}),
		exchangeHash("VC", "VS", []byte("IX"), []byte("IS"), []byte("KS"), []byte("QC"), []byte("QS"), []byte{1}),
		exchangeHash("VC", "VS", []byte("IC"), []byte("IS"), []byte("KX"), []byte("QC"), []byte("QS"), []byte{1}),
		exchangeHash("VC", "VS", []byte("IC"), []byte("IS"), []byte("KS"), []byte("QC"), []byte("QS"), []byte{2}),
	}
	for i, v := range variants {
		if bytes.Equal(base, v) {
			t.Errorf("variant %d did not change the exchange hash", i)
		}
	}
}
