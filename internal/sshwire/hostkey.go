package sshwire

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"io"
)

// MarshalEd25519PublicKey encodes a host public key in the ssh-ed25519 blob
// format (RFC 8709 §4): string "ssh-ed25519", string key.
func MarshalEd25519PublicKey(pub ed25519.PublicKey) []byte {
	out := AppendString(nil, []byte(HostKeyEd25519))
	return AppendString(out, pub)
}

// ParsePublicKeyBlob decodes any host key blob far enough to extract its
// algorithm name and raw key material. Unknown algorithms still decode: the
// scanner records whatever key the server presents.
func ParsePublicKeyBlob(blob []byte) (algo string, key []byte, err error) {
	name, rest, err := ReadString(blob)
	if err != nil {
		return "", nil, fmt.Errorf("sshwire: host key blob: %w", err)
	}
	return string(name), rest, nil
}

// ParseEd25519PublicKey decodes an ssh-ed25519 host key blob into a usable
// verification key.
func ParseEd25519PublicKey(blob []byte) (ed25519.PublicKey, error) {
	algo, rest, err := ParsePublicKeyBlob(blob)
	if err != nil {
		return nil, err
	}
	if algo != HostKeyEd25519 {
		return nil, fmt.Errorf("sshwire: host key algorithm %q, want %s", algo, HostKeyEd25519)
	}
	key, rest2, err := ReadString(rest)
	if err != nil {
		return nil, fmt.Errorf("sshwire: ed25519 key field: %w", err)
	}
	if len(rest2) != 0 {
		return nil, fmt.Errorf("sshwire: %d trailing bytes in host key blob", len(rest2))
	}
	if len(key) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("sshwire: ed25519 key length %d", len(key))
	}
	return ed25519.PublicKey(key), nil
}

// MarshalEd25519Signature encodes a signature in SSH signature-blob format:
// string "ssh-ed25519", string signature.
func MarshalEd25519Signature(sig []byte) []byte {
	out := AppendString(nil, []byte(HostKeyEd25519))
	return AppendString(out, sig)
}

// ParseSignatureBlob decodes an SSH signature blob into algorithm name and
// raw signature bytes.
func ParseSignatureBlob(blob []byte) (algo string, sig []byte, err error) {
	name, rest, err := ReadString(blob)
	if err != nil {
		return "", nil, fmt.Errorf("sshwire: signature blob: %w", err)
	}
	sig, rest, err = ReadString(rest)
	if err != nil {
		return "", nil, fmt.Errorf("sshwire: signature field: %w", err)
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("sshwire: %d trailing bytes in signature blob", len(rest))
	}
	return string(name), sig, nil
}

// Fingerprint renders the OpenSSH-style SHA256 fingerprint of a host key
// blob: "SHA256:" followed by unpadded base64. This is the canonical compact
// form the alias pipeline uses for the key half of the SSH identifier.
func Fingerprint(blob []byte) string {
	sum := sha256.Sum256(blob)
	return "SHA256:" + base64.RawStdEncoding.EncodeToString(sum[:])
}

// GenerateEd25519 deterministically derives a host key pair from the given
// random stream. Simulated devices derive their keys from their device ID so
// worlds are reproducible; real deployments would use crypto/rand.
func GenerateEd25519(rand io.Reader) (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand)
}
