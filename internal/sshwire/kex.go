package sshwire

import (
	"crypto/ecdh"
	"crypto/sha256"
	"fmt"
	"io"
)

// exchangeHash computes H for curve25519-sha256 (RFC 8731 reuses the RFC 5656
// §4 ECDH construction):
//
//	H = SHA256(string V_C, string V_S, string I_C, string I_S,
//	           string K_S, string Q_C, string Q_S, mpint K)
//
// where V_* are the identification strings without CRLF, I_* the full
// KEXINIT payloads, K_S the host key blob, Q_* the 32-byte public points and
// K the shared secret interpreted as a positive mpint.
func exchangeHash(vc, vs string, ic, is, ks, qc, qs, k []byte) []byte {
	var buf []byte
	buf = AppendString(buf, []byte(vc))
	buf = AppendString(buf, []byte(vs))
	buf = AppendString(buf, ic)
	buf = AppendString(buf, is)
	buf = AppendString(buf, ks)
	buf = AppendString(buf, qc)
	buf = AppendString(buf, qs)
	buf = AppendMpint(buf, k)
	sum := sha256.Sum256(buf)
	return sum[:]
}

// generateX25519 creates an ephemeral key pair from the given entropy source.
func generateX25519(rand io.Reader) (*ecdh.PrivateKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("sshwire: X25519 keygen: %w", err)
	}
	return priv, nil
}

// x25519Shared computes the shared secret between priv and the peer's raw
// 32-byte public point.
func x25519Shared(priv *ecdh.PrivateKey, peerPoint []byte) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPoint)
	if err != nil {
		return nil, fmt.Errorf("sshwire: peer X25519 point: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("sshwire: X25519 agreement: %w", err)
	}
	return shared, nil
}

// marshalECDHInit builds the SSH_MSG_KEX_ECDH_INIT payload.
func marshalECDHInit(qc []byte) []byte {
	out := []byte{MsgKexECDHInit}
	return AppendString(out, qc)
}

// parseECDHInit decodes an SSH_MSG_KEX_ECDH_INIT payload.
func parseECDHInit(payload []byte) (qc []byte, err error) {
	if len(payload) < 1 || payload[0] != MsgKexECDHInit {
		return nil, fmt.Errorf("%w: not an ECDH_INIT", ErrBadPacket)
	}
	qc, rest, err := ReadString(payload[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in ECDH_INIT", ErrBadPacket)
	}
	return qc, nil
}

// marshalECDHReply builds the SSH_MSG_KEX_ECDH_REPLY payload.
func marshalECDHReply(ks, qs, sig []byte) []byte {
	out := []byte{MsgKexECDHReply}
	out = AppendString(out, ks)
	out = AppendString(out, qs)
	return AppendString(out, sig)
}

// parseECDHReply decodes an SSH_MSG_KEX_ECDH_REPLY payload.
func parseECDHReply(payload []byte) (ks, qs, sig []byte, err error) {
	if len(payload) < 1 || payload[0] != MsgKexECDHReply {
		return nil, nil, nil, fmt.Errorf("%w: not an ECDH_REPLY", ErrBadPacket)
	}
	b := payload[1:]
	if ks, b, err = ReadString(b); err != nil {
		return nil, nil, nil, fmt.Errorf("sshwire: ECDH_REPLY host key: %w", err)
	}
	if qs, b, err = ReadString(b); err != nil {
		return nil, nil, nil, fmt.Errorf("sshwire: ECDH_REPLY server point: %w", err)
	}
	if sig, b, err = ReadString(b); err != nil {
		return nil, nil, nil, fmt.Errorf("sshwire: ECDH_REPLY signature: %w", err)
	}
	if len(b) != 0 {
		return nil, nil, nil, fmt.Errorf("%w: trailing bytes in ECDH_REPLY", ErrBadPacket)
	}
	return ks, qs, sig, nil
}

// marshalDisconnect builds an SSH_MSG_DISCONNECT payload.
func marshalDisconnect(reason uint32, msg string) []byte {
	out := []byte{MsgDisconnect}
	out = AppendUint32(out, reason)
	out = AppendString(out, []byte(msg))
	return AppendString(out, nil) // language tag
}

// Disconnect reason codes (RFC 4253 §11.1).
const (
	DisconnectKexFailed     = 3
	DisconnectByApplication = 11
)
