package sshwire

import (
	"fmt"
)

// KexInit is the SSH_MSG_KEXINIT payload (RFC 4253 §7.1). The ten name-lists
// MUST each be ordered by preference, which is why their exact content and
// order fingerprint the implementation — the first half of the paper's SSH
// identifier.
type KexInit struct {
	// Cookie is 16 random bytes; it does not participate in identifiers.
	Cookie [16]byte
	// KexAlgorithms through Languages are the ten RFC 4253 name-lists.
	KexAlgorithms             []string
	ServerHostKeyAlgorithms   []string
	EncryptionClientToServer  []string
	EncryptionServerToClient  []string
	MACClientToServer         []string
	MACServerToClient         []string
	CompressionClientToServer []string
	CompressionServerToClient []string
	LanguagesClientToServer   []string
	LanguagesServerToClient   []string
	// FirstKexPacketFollows signals an optimistic guessed kex packet.
	FirstKexPacketFollows bool
	// Reserved is transmitted as zero by every known implementation.
	Reserved uint32
}

// Marshal encodes the message payload, including the leading message number.
func (k *KexInit) Marshal() []byte {
	out := []byte{MsgKexInit}
	out = append(out, k.Cookie[:]...)
	for _, list := range k.nameLists() {
		out = AppendNameList(out, list)
	}
	if k.FirstKexPacketFollows {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return AppendUint32(out, k.Reserved)
}

// nameLists returns the ten lists in wire order.
func (k *KexInit) nameLists() [][]string {
	return [][]string{
		k.KexAlgorithms,
		k.ServerHostKeyAlgorithms,
		k.EncryptionClientToServer,
		k.EncryptionServerToClient,
		k.MACClientToServer,
		k.MACServerToClient,
		k.CompressionClientToServer,
		k.CompressionServerToClient,
		k.LanguagesClientToServer,
		k.LanguagesServerToClient,
	}
}

// ParseKexInit decodes an SSH_MSG_KEXINIT payload (with message number).
func ParseKexInit(payload []byte) (*KexInit, error) {
	if len(payload) < 1 || payload[0] != MsgKexInit {
		return nil, fmt.Errorf("%w: not a KEXINIT", ErrBadPacket)
	}
	b := payload[1:]
	if len(b) < 16 {
		return nil, ErrShortBuffer
	}
	var k KexInit
	copy(k.Cookie[:], b[:16])
	b = b[16:]
	lists := make([][]string, 10)
	var err error
	for i := range lists {
		lists[i], b, err = ReadNameList(b)
		if err != nil {
			return nil, fmt.Errorf("sshwire: KEXINIT name-list %d: %w", i, err)
		}
	}
	k.KexAlgorithms = lists[0]
	k.ServerHostKeyAlgorithms = lists[1]
	k.EncryptionClientToServer = lists[2]
	k.EncryptionServerToClient = lists[3]
	k.MACClientToServer = lists[4]
	k.MACServerToClient = lists[5]
	k.CompressionClientToServer = lists[6]
	k.CompressionServerToClient = lists[7]
	k.LanguagesClientToServer = lists[8]
	k.LanguagesServerToClient = lists[9]
	if len(b) < 5 {
		return nil, ErrShortBuffer
	}
	k.FirstKexPacketFollows = b[0] != 0
	k.Reserved, _, err = ReadUint32(b[1:])
	if err != nil {
		return nil, err
	}
	return &k, nil
}

// negotiate picks the first client algorithm also present on the server list
// (RFC 4253 §7.1 negotiation rule).
func negotiate(client, server []string) (string, bool) {
	for _, c := range client {
		for _, s := range server {
			if c == s {
				return c, true
			}
		}
	}
	return "", false
}

// Algorithm names used by this implementation.
const (
	KexCurve25519       = "curve25519-sha256"
	KexCurve25519LibSSH = "curve25519-sha256@libssh.org"
	HostKeyEd25519      = "ssh-ed25519"
)
