package sshwire

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"aliaslimit/internal/netsim"
)

// TestParseKexInitNeverPanics feeds arbitrary payloads to the KEXINIT
// decoder.
func TestParseKexInitNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseKexInit panicked on %x: %v", b, r)
			}
		}()
		_, _ = ParseKexInit(b)
		payload := append([]byte{MsgKexInit}, b...)
		_, _ = ParseKexInit(payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReadPacketNeverPanics feeds arbitrary streams to the packet reader.
func TestReadPacketNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadPacket panicked on %x: %v", b, r)
			}
		}()
		_, _ = ReadPacket(bytes.NewReader(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReadBannerNeverPanics feeds arbitrary pre-banner noise.
func TestReadBannerNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadBanner panicked on %x: %v", b, r)
			}
		}()
		_, _ = ReadBanner(bufio.NewReader(bytes.NewReader(b)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestKexBlobParsersNeverPanic covers the key/signature blob decoders.
func TestKexBlobParsersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("blob parser panicked on %x: %v", b, r)
			}
		}()
		_, _, _ = ParsePublicKeyBlob(b)
		_, _ = ParseEd25519PublicKey(b)
		_, _, _ = ParseSignatureBlob(b)
		_, _ = parseECDHInit(b)
		_, _, _, _ = parseECDHReply(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMutatedKexInit mutates every byte of a valid KEXINIT payload.
func TestMutatedKexInit(t *testing.T) {
	var cookie [16]byte
	base := Profiles[0].Algorithms.KexInit(cookie).Marshal()
	for pos := 0; pos < len(base); pos++ {
		mut := append([]byte(nil), base...)
		mut[pos] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseKexInit panicked with byte %d flipped: %v", pos, r)
				}
			}()
			_, _ = ParseKexInit(mut)
		}()
	}
}

// hostileServe runs the server against a scripted client and must return
// (not hang, not panic) for every script.
func TestServerSurvivesHostileClients(t *testing.T) {
	_, priv, err := GenerateEd25519(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Profiles[0]
	cfg := ServerConfig{
		Banner: p.Banner, Algorithms: p.Algorithms, HostKey: priv,
		HandshakeTimeout: 300 * time.Millisecond,
	}
	scripts := map[string]func(c net.Conn){
		"immediate close": func(c net.Conn) {},
		"garbage banner": func(c net.Conn) {
			c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
			io.Copy(io.Discard, c)
		},
		"banner then garbage packet": func(c net.Conn) {
			br := bufio.NewReader(c)
			ReadBanner(br)
			WriteBanner(c, "SSH-2.0-Hostile")
			c.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 1, 2, 3})
			io.Copy(io.Discard, br)
		},
		"valid kexinit then junk ecdh": func(c net.Conn) {
			br := bufio.NewReader(c)
			ReadBanner(br)
			WriteBanner(c, "SSH-2.0-Hostile")
			ReadPacket(br) // server KEXINIT
			var cookie [16]byte
			WritePacket(c, DefaultClientAlgorithms().KexInit(cookie).Marshal())
			WritePacket(c, []byte{MsgKexECDHInit, 0xde, 0xad}) // truncated point
			io.Copy(io.Discard, br)
		},
		"silent after banner": func(c net.Conn) {
			br := bufio.NewReader(c)
			ReadBanner(br)
			WriteBanner(c, "SSH-2.0-Hostile")
			io.Copy(io.Discard, br) // never send KEXINIT
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			client, server := net.Pipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				NewServer(cfg).Serve(server, netsim.ServeContext{})
			}()
			go func() {
				defer client.Close()
				_ = client.SetDeadline(time.Now().Add(time.Second))
				script(client)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Second):
				t.Fatal("server hung against hostile client")
			}
		})
	}
}
