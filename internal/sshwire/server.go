package sshwire

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"io"
	"net"
	"net/netip"
	"time"

	"aliaslimit/internal/netsim"
)

// ServerConfig describes one simulated SSH server endpoint.
type ServerConfig struct {
	// Banner is the identification string (must start with "SSH-").
	Banner string
	// Algorithms is the server's KEXINIT offer.
	Algorithms Algorithms
	// HostKey is the ssh-ed25519 host private key. SSH hosts generate their
	// key pair at service setup and share it across all interfaces — the
	// property the paper's identifier exploits.
	HostKey ed25519.PrivateKey
	// AlgorithmsFor, when set, overrides the offer per local address. This
	// models the 0.4% of non-singleton hosts the paper found communicating
	// different algorithmic capabilities on different interfaces.
	AlgorithmsFor func(addr netip.Addr) Algorithms
	// BannerFor, when set, overrides the banner per local address.
	BannerFor func(addr netip.Addr) string
	// Rand supplies cookie and ephemeral-key entropy. Nil means
	// crypto/rand; simulated worlds pass deterministic streams.
	Rand io.Reader
	// HandshakeTimeout bounds the whole exchange; zero means 5s.
	HandshakeTimeout time.Duration
}

// Server is a netsim service handler speaking the plaintext phase of SSH.
type Server struct {
	cfg ServerConfig
}

// NewServer returns a handler for cfg.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	return &Server{cfg: cfg}
}

// Config returns the server configuration (ground-truth bookkeeping).
func (s *Server) Config() ServerConfig { return s.cfg }

// Serve implements netsim.Handler: it runs the banner exchange, KEXINIT
// exchange, and one curve25519/ed25519 key exchange, then disconnects. A
// scanner walks away with everything the paper's SSH identifier needs.
func (s *Server) Serve(conn net.Conn, sc netsim.ServeContext) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))

	banner := s.cfg.Banner
	if s.cfg.BannerFor != nil {
		banner = s.cfg.BannerFor(sc.LocalAddr)
	}
	algos := s.cfg.Algorithms
	if s.cfg.AlgorithmsFor != nil {
		algos = s.cfg.AlgorithmsFor(sc.LocalAddr)
	}

	br := bufio.NewReader(conn)
	if err := WriteBanner(conn, banner); err != nil {
		return
	}
	clientBanner, err := ReadBanner(br)
	if err != nil {
		return
	}

	var cookie [16]byte
	if _, err := io.ReadFull(s.cfg.Rand, cookie[:]); err != nil {
		return
	}
	serverKexInit := algos.KexInit(cookie).Marshal()
	if err := WritePacket(conn, serverKexInit); err != nil {
		return
	}
	clientKexInit, err := readNonTrivialPacket(br)
	if err != nil {
		return
	}
	ck, err := ParseKexInit(clientKexInit)
	if err != nil {
		return
	}

	kexAlgo, okKex := negotiate(ck.KexAlgorithms, algos.Kex)
	hostKeyAlgo, okHK := negotiate(ck.ServerHostKeyAlgorithms, algos.HostKey)
	if !okKex || !okHK ||
		(kexAlgo != KexCurve25519 && kexAlgo != KexCurve25519LibSSH) ||
		hostKeyAlgo != HostKeyEd25519 {
		_ = WritePacket(conn, marshalDisconnect(DisconnectKexFailed, "no common algorithms"))
		return
	}

	initPayload, err := readNonTrivialPacket(br)
	if err != nil {
		return
	}
	qc, err := parseECDHInit(initPayload)
	if err != nil {
		return
	}

	eph, err := generateX25519(s.cfg.Rand)
	if err != nil {
		return
	}
	shared, err := x25519Shared(eph, qc)
	if err != nil {
		_ = WritePacket(conn, marshalDisconnect(DisconnectKexFailed, "bad client point"))
		return
	}
	qs := eph.PublicKey().Bytes()

	ks := MarshalEd25519PublicKey(s.cfg.HostKey.Public().(ed25519.PublicKey))
	h := exchangeHash(clientBanner, banner, clientKexInit, serverKexInit, ks, qc, qs, shared)
	sigBlob := MarshalEd25519Signature(ed25519.Sign(s.cfg.HostKey, h))

	if err := WritePacket(conn, marshalECDHReply(ks, qs, sigBlob)); err != nil {
		return
	}
	if err := WritePacket(conn, []byte{MsgNewKeys}); err != nil {
		return
	}
	// Drain the client's NEWKEYS (or disconnect) so a polite scanner's
	// final write does not block on an unread pipe, then hang up.
	_, _ = readNonTrivialPacket(br)
}

// readNonTrivialPacket reads packets, skipping SSH_MSG_IGNORE, until it gets
// one that carries protocol meaning.
func readNonTrivialPacket(r io.Reader) ([]byte, error) {
	for {
		p, err := ReadPacket(r)
		if err != nil {
			return nil, err
		}
		if len(p) == 0 || p[0] == MsgIgnore {
			continue
		}
		return p, nil
	}
}
