// Package sshwire implements the plaintext phase of the SSH transport layer
// protocol (RFC 4253): version-string exchange, the binary packet protocol,
// algorithm negotiation (SSH_MSG_KEXINIT), and the curve25519-sha256 key
// exchange with ssh-ed25519 host keys — server and client sides.
//
// That is exactly the slice of SSH the paper's methodology touches: the
// scanner completes the TCP handshake, reads the server's banner, exchanges
// KEXINIT messages (whose algorithm name-lists RFC 4253 requires to be in
// preference order, making them an implementation fingerprint), and runs one
// key exchange to obtain the server's host public key. Nothing after
// SSH_MSG_NEWKEYS is ever needed, so no encryption, MAC, or authentication
// layer is implemented.
//
// Everything is built on the standard library: crypto/ecdh for X25519,
// crypto/ed25519 for host keys, crypto/sha256 for the exchange hash.
package sshwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Message numbers from RFC 4253 §12.
const (
	MsgDisconnect    = 1
	MsgIgnore        = 2
	MsgUnimplemented = 3
	MsgKexInit       = 20
	MsgNewKeys       = 21
	MsgKexECDHInit   = 30
	MsgKexECDHReply  = 31
)

// Protocol limits.
const (
	// MaxPacketLen bounds accepted packets; RFC 4253 requires support for
	// 32768-byte packets and allows larger. A scanner has no business
	// accepting more.
	MaxPacketLen = 65536
	// MaxBannerLen bounds the identification string (255 per RFC, but real
	// servers occasionally exceed it; we allow some slack for pre-banner
	// lines).
	MaxBannerLen = 1024
	// blockSize is the cipher block size before NEWKEYS (RFC 4253 §6: 8).
	blockSize = 8
	// minPadding is the minimum padding length (RFC 4253 §6).
	minPadding = 4
)

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("sshwire: buffer too short")
	ErrTooLong     = errors.New("sshwire: field exceeds limit")
	ErrBadPacket   = errors.New("sshwire: malformed packet")
	ErrBadBanner   = errors.New("sshwire: malformed identification string")
)

// --- SSH primitive types (RFC 4251 §5) ---

// AppendUint32 appends a uint32 in network order.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// AppendString appends an SSH string (uint32 length prefix + bytes).
func AppendString(dst []byte, s []byte) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendNameList appends an SSH name-list: a string of comma-separated names.
func AppendNameList(dst []byte, names []string) []byte {
	return AppendString(dst, []byte(strings.Join(names, ",")))
}

// AppendMpint appends an SSH mpint: two's-complement big-endian with a
// leading zero byte when the high bit of the first byte is set, and minimal
// length. The input is an unsigned big-endian integer.
func AppendMpint(dst []byte, b []byte) []byte {
	// Strip leading zeros.
	for len(b) > 0 && b[0] == 0 {
		b = b[1:]
	}
	if len(b) == 0 {
		return AppendUint32(dst, 0)
	}
	if b[0]&0x80 != 0 {
		dst = AppendUint32(dst, uint32(len(b)+1))
		dst = append(dst, 0)
		return append(dst, b...)
	}
	return AppendString(dst, b)
}

// ReadUint32 decodes a uint32 from the front of b.
func ReadUint32(b []byte) (v uint32, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, ErrShortBuffer
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

// ReadString decodes an SSH string from the front of b. The returned slice
// aliases b.
func ReadString(b []byte) (s []byte, rest []byte, err error) {
	n, rest, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint32(len(rest)) < n {
		return nil, nil, ErrShortBuffer
	}
	return rest[:n], rest[n:], nil
}

// ReadNameList decodes an SSH name-list from the front of b.
func ReadNameList(b []byte) (names []string, rest []byte, err error) {
	s, rest, err := ReadString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(s) == 0 {
		return nil, rest, nil
	}
	return strings.Split(string(s), ","), rest, nil
}

// --- Binary packet protocol (RFC 4253 §6), plaintext phase only ---

// WritePacket frames payload into an unencrypted SSH packet and writes it.
// Padding is zero-filled: RFC 4253 says padding SHOULD be random, but in the
// plaintext phase its only functional role is alignment, and deterministic
// output keeps scans and tests reproducible.
func WritePacket(w io.Writer, payload []byte) error {
	if len(payload) > MaxPacketLen {
		return ErrTooLong
	}
	// packet_length(4) + padding_length(1) + payload + padding ≡ 0 (mod 8)
	pad := blockSize - (5+len(payload))%blockSize
	if pad < minPadding {
		pad += blockSize
	}
	buf := make([]byte, 0, 5+len(payload)+pad)
	buf = AppendUint32(buf, uint32(1+len(payload)+pad))
	buf = append(buf, byte(pad))
	buf = append(buf, payload...)
	buf = append(buf, make([]byte, pad)...)
	_, err := w.Write(buf)
	return err
}

// ReadPacket reads one unencrypted SSH packet and returns its payload.
func ReadPacket(r io.Reader) ([]byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	packetLen := binary.BigEndian.Uint32(head[:4])
	padLen := int(head[4])
	if packetLen < 1 || packetLen > MaxPacketLen {
		return nil, fmt.Errorf("%w: packet length %d", ErrBadPacket, packetLen)
	}
	if padLen < minPadding || uint32(padLen) >= packetLen {
		return nil, fmt.Errorf("%w: padding length %d of %d", ErrBadPacket, padLen, packetLen)
	}
	body := make([]byte, int(packetLen)-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body[:len(body)-padLen], nil
}

// --- Identification string exchange (RFC 4253 §4.2) ---

// WriteBanner writes the identification string followed by CRLF. banner must
// start with "SSH-".
func WriteBanner(w io.Writer, banner string) error {
	if !strings.HasPrefix(banner, "SSH-") {
		return fmt.Errorf("%w: %q", ErrBadBanner, banner)
	}
	_, err := io.WriteString(w, banner+"\r\n")
	return err
}

// ReadBanner reads the peer's identification string, skipping any pre-banner
// lines the server may send (RFC 4253 §4.2 allows them before the version
// string). The returned banner has no line terminator.
func ReadBanner(r *bufio.Reader) (string, error) {
	for lines := 0; lines < 32; lines++ {
		line, err := readLine(r)
		if err != nil {
			return "", err
		}
		if strings.HasPrefix(line, "SSH-") {
			if len(line) > MaxBannerLen {
				return "", fmt.Errorf("%w: banner length %d", ErrBadBanner, len(line))
			}
			return line, nil
		}
	}
	return "", fmt.Errorf("%w: no SSH- line within 32 lines", ErrBadBanner)
}

// readLine reads a CRLF- or LF-terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	var sb strings.Builder
	for sb.Len() <= MaxBannerLen {
		b, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '\n' {
			s := sb.String()
			return strings.TrimSuffix(s, "\r"), nil
		}
		sb.WriteByte(b)
	}
	return "", fmt.Errorf("%w: line too long", ErrBadBanner)
}
