package sshwire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		enc := AppendString(nil, s)
		got, rest, err := ReadString(enc)
		return err == nil && bytes.Equal(got, s) && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		got, rest, err := ReadUint32(AppendUint32(nil, v))
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadStringErrors(t *testing.T) {
	if _, _, err := ReadString([]byte{0, 0}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short length prefix: %v", err)
	}
	if _, _, err := ReadString(AppendUint32(nil, 10)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("length beyond buffer: %v", err)
	}
}

func TestNameListRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"curve25519-sha256"},
		{"aes128-ctr", "aes192-ctr", "aes256-ctr"},
	}
	for _, names := range cases {
		enc := AppendNameList(nil, names)
		got, rest, err := ReadNameList(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("ReadNameList(%v): %v", names, err)
		}
		if strings.Join(got, ",") != strings.Join(names, ",") {
			t.Errorf("round trip %v -> %v", names, got)
		}
	}
}

func TestMpintEncoding(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte // wire bytes after the length prefix
	}{
		{nil, nil},                         // zero -> empty
		{[]byte{0, 0}, nil},                // leading zeros stripped to zero
		{[]byte{0x7f}, []byte{0x7f}},       // high bit clear: as-is
		{[]byte{0x80}, []byte{0x00, 0x80}}, // high bit set: leading zero added
		{[]byte{0x00, 0x01}, []byte{0x01}}, // minimal form
	}
	for _, tc := range cases {
		enc := AppendMpint(nil, tc.in)
		got, rest, err := ReadString(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("mpint decode: %v", err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("AppendMpint(%x) payload = %x, want %x", tc.in, got, tc.want)
		}
	}
}

func TestMpintNeverNegativeProperty(t *testing.T) {
	f := func(b []byte) bool {
		enc := AppendMpint(nil, b)
		payload, _, err := ReadString(enc)
		if err != nil {
			return false
		}
		// Encoded mpints must be non-negative (first byte high bit clear)
		// and minimal (no redundant leading zero).
		if len(payload) == 0 {
			return true
		}
		if payload[0]&0x80 != 0 {
			return false
		}
		if len(payload) >= 2 && payload[0] == 0 && payload[1]&0x80 == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxPacketLen {
			payload = payload[:MaxPacketLen]
		}
		var buf bytes.Buffer
		if err := WritePacket(&buf, payload); err != nil {
			return false
		}
		// Total length must be a multiple of the pre-NEWKEYS block size.
		if buf.Len()%8 != 0 {
			return false
		}
		got, err := ReadPacket(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPacketTooLong(t *testing.T) {
	if err := WritePacket(io.Discard, make([]byte, MaxPacketLen+1)); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestReadPacketMalformed(t *testing.T) {
	// Padding >= packet length.
	bad := AppendUint32(nil, 5)
	bad = append(bad, 200, 0, 0, 0, 0)
	if _, err := ReadPacket(bytes.NewReader(bad)); !errors.Is(err, ErrBadPacket) {
		t.Errorf("bad padding: %v", err)
	}
	// Packet length zero.
	bad2 := AppendUint32(nil, 0)
	bad2 = append(bad2, 4)
	if _, err := ReadPacket(bytes.NewReader(bad2)); !errors.Is(err, ErrBadPacket) {
		t.Errorf("zero length: %v", err)
	}
	// Giant packet length.
	bad3 := AppendUint32(nil, MaxPacketLen+100)
	bad3 = append(bad3, 4)
	if _, err := ReadPacket(bytes.NewReader(bad3)); !errors.Is(err, ErrBadPacket) {
		t.Errorf("giant length: %v", err)
	}
	// Truncated body.
	tr := AppendUint32(nil, 100)
	tr = append(tr, 4, 1, 2, 3)
	if _, err := ReadPacket(bytes.NewReader(tr)); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestBannerExchange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBanner(&buf, "SSH-2.0-Test_1.0"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBanner(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != "SSH-2.0-Test_1.0" {
		t.Errorf("banner = %q", got)
	}
	if err := WriteBanner(io.Discard, "HTTP/1.1"); !errors.Is(err, ErrBadBanner) {
		t.Errorf("non-SSH banner: %v", err)
	}
}

func TestReadBannerSkipsPreLines(t *testing.T) {
	in := "Welcome to example.net\r\nPlease behave.\nSSH-2.0-OpenSSH_9.2\r\n"
	got, err := ReadBanner(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got != "SSH-2.0-OpenSSH_9.2" {
		t.Errorf("banner = %q", got)
	}
}

func TestReadBannerGivesUp(t *testing.T) {
	in := strings.Repeat("noise line\n", 40)
	if _, err := ReadBanner(bufio.NewReader(strings.NewReader(in))); !errors.Is(err, ErrBadBanner) {
		t.Errorf("33+ noise lines: %v", err)
	}
	long := strings.Repeat("x", MaxBannerLen+10) + "\n"
	if _, err := ReadBanner(bufio.NewReader(strings.NewReader(long))); !errors.Is(err, ErrBadBanner) {
		t.Errorf("overlong line: %v", err)
	}
	if _, err := ReadBanner(bufio.NewReader(strings.NewReader("SSH-"))); err == nil {
		t.Error("EOF before newline: want error")
	}
}

func TestKexInitRoundTrip(t *testing.T) {
	var cookie [16]byte
	for i := range cookie {
		cookie[i] = byte(i)
	}
	k := Profiles[0].Algorithms.KexInit(cookie)
	k.FirstKexPacketFollows = true
	k.LanguagesClientToServer = []string{"en"}
	payload := k.Marshal()
	got, err := ParseKexInit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), payload) {
		t.Error("KEXINIT re-marshal differs")
	}
	if !got.FirstKexPacketFollows {
		t.Error("FirstKexPacketFollows lost")
	}
	if got.Cookie != cookie {
		t.Error("cookie lost")
	}
	if strings.Join(got.KexAlgorithms, ",") != strings.Join(k.KexAlgorithms, ",") {
		t.Error("kex list lost")
	}
}

func TestParseKexInitErrors(t *testing.T) {
	if _, err := ParseKexInit([]byte{MsgNewKeys}); err == nil {
		t.Error("wrong message number: want error")
	}
	if _, err := ParseKexInit([]byte{MsgKexInit, 1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short cookie: %v", err)
	}
	// Cookie present but lists truncated.
	buf := append([]byte{MsgKexInit}, make([]byte, 16)...)
	buf = append(buf, 0, 0, 0, 9) // name-list claims 9 bytes, none follow
	if _, err := ParseKexInit(buf); err == nil {
		t.Error("truncated name-list: want error")
	}
	// All lists but missing trailer.
	ok := (&KexInit{}).Marshal()
	if _, err := ParseKexInit(ok[:len(ok)-3]); err == nil {
		t.Error("truncated trailer: want error")
	}
}

func TestNegotiate(t *testing.T) {
	server := []string{"c", "a", "b"}
	if got, ok := negotiate([]string{"x", "b", "a"}, server); !ok || got != "b" {
		t.Errorf("negotiate = %q,%v; want b (client preference wins)", got, ok)
	}
	if _, ok := negotiate([]string{"x"}, server); ok {
		t.Error("no overlap should fail")
	}
	if _, ok := negotiate(nil, server); ok {
		t.Error("empty client list should fail")
	}
}

func TestProfileByName(t *testing.T) {
	if p := ProfileByName("dropbear-2022"); p == nil || p.Banner != "SSH-2.0-dropbear_2022.83" {
		t.Errorf("ProfileByName(dropbear-2022) = %+v", p)
	}
	if p := ProfileByName("nope"); p != nil {
		t.Errorf("unknown profile = %+v, want nil", p)
	}
	// Every profile must be able to negotiate with the default client offer.
	client := DefaultClientAlgorithms()
	for _, p := range Profiles {
		if _, ok := negotiate(client.Kex, p.Algorithms.Kex); !ok {
			t.Errorf("profile %s: no common kex with scanner", p.Name)
		}
		if _, ok := negotiate(client.HostKey, p.Algorithms.HostKey); !ok {
			t.Errorf("profile %s: no common host key with scanner", p.Name)
		}
	}
}

func TestAlgorithmsClone(t *testing.T) {
	a := Profiles[0].Algorithms
	b := a.Clone()
	b.MAC[0] = "mutated"
	if a.MAC[0] == "mutated" {
		t.Error("Clone shares backing arrays")
	}
}
