package topo

import (
	"fmt"
	"net/netip"

	"aliaslimit/internal/xrand"
)

// ASKind is the coarse business of an autonomous system; it decides which
// device populations are placed there, which in turn reproduces the paper's
// AS-level findings (SSH sets concentrate in clouds, BGP/SNMPv3 in ISPs).
type ASKind int

const (
	// KindCloud hosts virtual machines: SSH-heavy, alias-set-light.
	KindCloud ASKind = iota
	// KindISP operates access and backbone routers: SNMP- and BGP-heavy.
	KindISP
	// KindEnterprise has a few routers and little else.
	KindEnterprise
)

// String names the kind.
func (k ASKind) String() string {
	switch k {
	case KindCloud:
		return "cloud"
	case KindISP:
		return "isp"
	case KindEnterprise:
		return "enterprise"
	default:
		return "unknown"
	}
}

// AS is one autonomous system with its address allocators.
type AS struct {
	// ASN is the autonomous system number. The well-known contributors use
	// the real ASNs from the paper's Tables 5/6 so the regenerated tables
	// read like the originals.
	ASN uint32
	// Name is a display label.
	Name string
	// Kind selects device placement.
	Kind ASKind
	// Weight is the relative share of its kind's population this AS gets.
	Weight float64

	index  int
	nextV4 uint32
	nextV6 uint64
}

// asChunkBits is the size of each AS's private IPv4 allocation (2^18 hosts).
const asChunkBits = 18

// v4Base is where synthetic allocations start (1.0.0.0).
const v4Base = 1 << 24

// AllocV4 returns the AS's next IPv4 address.
func (a *AS) AllocV4() netip.Addr {
	u := uint32(v4Base) + uint32(a.index)<<asChunkBits + a.nextV4
	a.nextV4++
	if a.nextV4 >= 1<<asChunkBits {
		panic(fmt.Sprintf("topo: AS%d exhausted its IPv4 chunk", a.ASN))
	}
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}

// AllocV6 returns the AS's next IPv6 address: 2a00:<asIndex>::<counter>.
func (a *AS) AllocV6() netip.Addr {
	a.nextV6++
	var b [16]byte
	b[0], b[1] = 0x2a, 0x00
	b[2], b[3] = byte(a.index>>8), byte(a.index)
	b[8] = byte(a.nextV6 >> 56)
	b[9] = byte(a.nextV6 >> 48)
	b[12] = byte(a.nextV6 >> 24)
	b[13] = byte(a.nextV6 >> 16)
	b[14] = byte(a.nextV6 >> 8)
	b[15] = byte(a.nextV6)
	return netip.AddrFrom16(b)
}

// ASNOfAddr recovers the owning AS index from a synthetic address. The
// experiments use the World's explicit map instead; this exists for
// debugging.
func ASNOfAddr(ases []*AS, addr netip.Addr) (uint32, bool) {
	if addr.Is4() {
		b := addr.As4()
		u := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		if u < v4Base {
			return 0, false
		}
		idx := int((u - v4Base) >> asChunkBits)
		if idx >= len(ases) {
			return 0, false
		}
		return ases[idx].ASN, true
	}
	b := addr.As16()
	idx := int(b[2])<<8 | int(b[3])
	if b[0] != 0x2a || idx >= len(ases) {
		return 0, false
	}
	return ases[idx].ASN, true
}

// cloudASNs are the paper's top cloud contributors (Table 5 SSH column and
// Table 6), heaviest first: DigitalOcean, Telefonica Argentina (an ISP that
// behaves cloud-like in the SSH table), Amazon, OVH, Hetzner, Amazon
// (14618), Contabo, Google Cloud (396982), Unified Layer, Linode, Vultr,
// Dreamhost.
var cloudASNs = []struct {
	asn    uint32
	name   string
	weight float64
}{
	{14061, "DigitalOcean", 14.0},
	{22927, "Telefonica-AR", 12.5},
	{16509, "Amazon-16509", 9.5},
	{16276, "OVH", 6.0},
	{24940, "Hetzner", 5.0},
	{14618, "Amazon-14618", 4.8},
	{45102, "Alibaba", 4.0},
	{396982, "GoogleCloud", 3.6},
	{46606, "UnifiedLayer", 3.2},
	{63949, "Linode", 3.0},
	{20473, "Vultr", 2.2},
	{26347, "Dreamhost", 1.6},
	{12876, "Scaleway", 1.4},
	{197695, "Reg.ru", 1.3},
	{8972, "Gd-EMEA", 1.1},
	{8560, "IONOS", 1.0},
	{51167, "Contabo", 1.0},
	{7506, "GMO", 0.9},
}

// ispASNs are the paper's ISP contributors (Tables 5/6): Telecom Italia,
// Vodafone Italy, Deutsche Telekom, China Telecom, ...
var ispASNs = []struct {
	asn    uint32
	name   string
	weight float64
}{
	{3269, "TelecomItalia", 10.0},
	{30722, "VodafoneIT", 6.5},
	{3320, "DeutscheTelekom", 5.5},
	{12874, "Fastweb", 5.2},
	{4134, "ChinaTelecom", 5.0},
	{8881, "Versatel", 4.2},
	{5089, "VirginMedia", 4.0},
	{3301, "TeliaSE", 3.7},
	{7018, "ATT", 3.6},
	{7029, "Windstream", 3.5},
	{21859, "Zenlayer", 3.0},
	{701, "Verizon", 2.8},
	{42689, "Glide", 2.3},
	{19429, "ETB", 2.1},
	{12389, "Rostelecom", 2.0},
	{852, "TELUS", 1.8},
	{17511, "OPTAGE", 1.7},
	{4837, "ChinaUnicom", 1.7},
	{6939, "HurricaneElectric", 1.6},
	{9808, "ChinaMobile", 1.5},
	{7922, "Comcast", 1.5},
	{7684, "SAKURA", 1.5},
	{197540, "Netcup", 1.2},
	{20857, "TransIP", 1.1},
}

// buildASes constructs the AS plan: the named heavy hitters plus a tail of
// smaller synthetic ASes per kind, Zipf-weighted so per-AS set counts spread
// the way Figure 6 shows.
func buildASes(cfg Config) []*AS {
	var ases []*AS
	add := func(asn uint32, name string, kind ASKind, weight float64) {
		ases = append(ases, &AS{ASN: asn, Name: name, Kind: kind, Weight: weight})
	}
	for _, c := range cloudASNs {
		add(c.asn, c.name, KindCloud, c.weight)
	}
	for _, c := range ispASNs {
		add(c.asn, c.name, KindISP, c.weight)
	}
	// Synthetic tails. ASNs are chosen in private/unallocated high ranges
	// to avoid colliding with the named ones.
	tail := func(kind ASKind, count int, base uint32, meanWeight float64) {
		for i := 0; i < count; i++ {
			w := meanWeight * float64(xrand.Zipf(1.4, 20, "as-weight", kind.String(), fmt.Sprint(i))) / 4
			add(base+uint32(i), fmt.Sprintf("%s-tail-%d", kind.String(), i), kind, w)
		}
	}
	tail(KindCloud, 18, 4200000000, 0.5)
	tail(KindISP, 60, 4200001000, 0.8)
	tail(KindEnterprise, 50, 4200002000, 0.5)
	for i, a := range ases {
		a.index = i
	}
	return ases
}

// pickAS selects an AS of the given kind, weight-proportionally, keyed by a
// stable label so device placement is deterministic.
func pickAS(ases []*AS, kind ASKind, keys ...string) *AS {
	var total float64
	for _, a := range ases {
		if a.Kind == kind {
			total += a.Weight
		}
	}
	x := xrand.Prob(keys...) * total
	for _, a := range ases {
		if a.Kind != kind {
			continue
		}
		x -= a.Weight
		if x <= 0 {
			return a
		}
	}
	// Rounding fell off the end: return the last matching AS.
	for i := len(ases) - 1; i >= 0; i-- {
		if ases[i].Kind == kind {
			return ases[i]
		}
	}
	panic("topo: no AS of kind " + kind.String())
}
