// Package topo deterministically generates the synthetic Internet the
// experiments run against: autonomous systems of several kinds, cloud
// servers, multi-interface routers, service deployment with ACLs,
// dual-stack assignment, IPID counter temperaments, scanning-vantage
// filtering, and the misconfigurations the paper lists as accuracy limits
// (factory-default SSH keys, duplicate BGP router IDs).
//
// All population parameters are calibrated so that, at Scale = 1.0
// (≈ 1:1000 of the paper's measured Internet), the experiment harness
// reproduces the *shape* of every table and figure: who wins, by what
// factor, and where the distributions bend.
package topo

// Config holds every generation knob. The zero value is not useful; start
// from Default() and override.
type Config struct {
	// Seed drives all pseudo-random draws; equal seeds give equal worlds.
	Seed uint64
	// Scale multiplies every population count. 1.0 ≈ 1:1000 of the paper's
	// Internet; tests use 0.05–0.2.
	Scale float64
	// BuildWorkers bounds how many workers shard the expensive device
	// construction (host keys, wire-protocol services) during Build; 0 uses
	// every CPU, 1 recovers the sequential baseline. Worlds are
	// byte-identical at every setting — generation is keyed by seed labels,
	// not by execution order.
	BuildWorkers int

	// --- population sizes at Scale = 1.0 ---

	// SingleSSHServers is the count of single-service cloud SSH hosts (the
	// paper's dominant SSH population: ~18.7M of 24.4M SSH IPv4s are in no
	// non-singleton set).
	SingleSSHServers int
	// MultiSSHHosts is the count of hosts with ≥2 SSH-responsive IPv4
	// addresses (the source of the ~926k union SSH alias sets).
	MultiSSHHosts int
	// SNMPSingleDevices is the count of single-interface SNMPv3 responders
	// (CPE-class, ~14.7M in the paper).
	SNMPSingleDevices int
	// SNMPRouters is the count of multi-interface SNMPv3 routers (the
	// ~557k SNMP alias sets covering 6.1M addresses).
	SNMPRouters int
	// BGPSilent is the count of BGP speakers that close immediately after
	// the handshake (the paper's 5.8M unidentifiable speakers).
	BGPSilent int
	// BGPSingleSpeakers is the count of identifiable BGP speakers whose
	// OPEN is reachable on exactly one address.
	BGPSingleSpeakers int
	// BGPMultiRouters is the count of identifiable BGP border routers with
	// multiple responsive interfaces (the ~12k BGP alias sets).
	BGPMultiRouters int

	// --- vantage coverage (why Censys sees more) ---

	// PCloudFiltersActive is the probability a cloud SSH host's upstream
	// IDS drops the single research vantage (Censys-only coverage).
	PCloudFiltersActive float64
	// PCloudMissedByCensys is the probability a host appeared after the
	// Censys snapshot (active-only coverage).
	PCloudMissedByCensys float64
	// PBGPFiltersActive / PBGPMissedByCensys are the BGP equivalents.
	PBGPFiltersActive  float64
	PBGPMissedByCensys float64

	// --- dual-stack assignment ---
	//
	// Calibration note: the paper's 634k SSH dual-stack sets cover only
	// 1.05M IPv4 and 771k IPv6 addresses (88% of sets are one v4 plus one
	// v6), so dual-stack must be dominated by single cloud servers, and a
	// large share of the known IPv6 population must be IPv6-only (the
	// paper finds just 64% of IPv6 addresses have a v4 counterpart).

	// PServerV6 is the probability a single cloud server is dual-stack.
	PServerV6 float64
	// PServerV6Only is the probability a cloud server is IPv6-only.
	PServerV6Only float64
	// PMultiSSHOneV6 / PMultiSSHManyV6: multi-address SSH hosts with one /
	// several (2–10) IPv6 addresses.
	PMultiSSHOneV6  float64
	PMultiSSHManyV6 float64
	// PSNMPRouterV6 is the probability an SNMP router has IPv6 interfaces
	// (1 with probability PSNMPRouterV6One, else 2–8).
	PSNMPRouterV6    float64
	PSNMPRouterV6One float64
	// SNMPV6OnlySingles is the count of IPv6-only single SNMP responders.
	SNMPV6OnlySingles int
	// PBGPMultiV6 is the probability an identifiable multi-interface BGP
	// router also speaks on 2–8 IPv6 addresses (the dual-stack BGP sets).
	PBGPMultiV6 float64
	// BGPV6OnlyMultiRouters / BGPV6OnlySingles are IPv6-only BGP speaker
	// counts (multi-address and single-address).
	BGPV6OnlyMultiRouters int
	BGPV6OnlySingles      int

	// --- cross-protocol co-location (the 3% multi-service addresses) ---

	// PSNMPRouterSSH is the probability an SNMP router also exposes SSH on
	// (a subset of) the same interfaces.
	PSNMPRouterSSH float64
	// PBGPRouterSNMP is the probability an identifiable BGP router also
	// answers SNMPv3.
	PBGPRouterSNMP float64
	// PBGPRouterSSH is the probability an identifiable BGP router also
	// exposes SSH.
	PBGPRouterSSH float64

	// --- misconfigurations (accuracy limits) ---

	// PSharedSSHKey is the probability a multi-address SSH host uses a
	// fleet/factory key shared with a sibling device (the paper's §2.7
	// false-merge source).
	PSharedSSHKey float64
	// PSSHPerIfaceVariation is the probability a multi-address SSH host
	// announces different algorithm capabilities per interface (the
	// paper's 0.4%).
	PSSHPerIfaceVariation float64
	// PDuplicateBGPID is the probability a BGP router reuses another
	// router's BGP identifier (mis-configuration; usually still separated
	// by ASN/hold-time in the full identifier).
	PDuplicateBGPID float64
	// PCloneSSHKeyOverlap is the probability a multi-service router (one
	// visible to two techniques at once) runs a cloned management config —
	// same SSH host key and software as a sibling router. These clones are
	// what the cross-technique validation "disagree" column counts.
	PCloneSSHKeyOverlap float64
	// PCloneEngineID is the analogous probability for cloned SNMPv3
	// engine IDs (a well-documented real-world misconfiguration).
	PCloneEngineID float64

	// --- ACLs ---

	// PSSHAcl is the probability SSH answers only on a subset of a
	// multi-address host's interfaces.
	PSSHAcl float64
	// PSNMPAcl is the probability SNMPv3 answers only on a subset.
	PSNMPAcl float64
	// PSNMPDisabled is the probability a device that would run SNMPv3 has
	// the agent administratively disabled (security hardening has been
	// shrinking the SNMP population for years). The device keeps its
	// addresses and other services; it simply never answers engine
	// discovery, and it leaves the SNMP ground truth entirely. Scenario
	// presets use this to model an "SNMP-dark" Internet.
	PSNMPDisabled float64

	// --- IPv6 hitlist ---

	// HitlistCoverage is the fraction of bound IPv6 addresses present in
	// the hitlist the active scan targets.
	HitlistCoverage float64

	// --- decoys and chaos ---

	// DecoyFraction adds unbound addresses to the scan universe so the
	// SYN phase classifies some probes as filtered.
	DecoyFraction float64
	// PBrokenSSH is the probability a cloud SSH host is misbehaving: it
	// accepts the connection but emits a non-SSH byte stream (crashed
	// daemons, tarpits, middleboxes). Scanners must survive and simply
	// record no identifier.
	PBrokenSSH float64
}

// Default returns the calibrated configuration. Counts are per Scale unit
// (Scale 1.0 ≈ 1:1000 of the paper's measurement).
func Default() Config {
	return Config{
		Seed:  1,
		Scale: 1.0,

		SingleSSHServers:  18700,
		MultiSSHHosts:     930,
		SNMPSingleDevices: 14700,
		SNMPRouters:       560,
		BGPSilent:         5800,
		BGPSingleSpeakers: 234,
		BGPMultiRouters:   12,

		PCloudFiltersActive:  0.30,
		PCloudMissedByCensys: 0.115,
		PBGPFiltersActive:    0.11,
		PBGPMissedByCensys:   0.045,

		PServerV6:     0.055,
		PServerV6Only: 0.015,

		PMultiSSHOneV6:  0.10,
		PMultiSSHManyV6: 0.06,

		PSNMPRouterV6:     0.045,
		PSNMPRouterV6One:  0.20,
		SNMPV6OnlySingles: 350,

		PBGPMultiV6:           0.50,
		BGPV6OnlyMultiRouters: 5,
		BGPV6OnlySingles:      28,

		PSNMPRouterSSH: 0.024,
		PBGPRouterSNMP: 0.30,
		PBGPRouterSSH:  0.40,

		PSharedSSHKey:         0.030,
		PSSHPerIfaceVariation: 0.004,
		PDuplicateBGPID:       0.02,
		PCloneSSHKeyOverlap:   0.04,
		PCloneEngineID:        0.02,

		PSSHAcl:  0.10,
		PSNMPAcl: 0.15,

		HitlistCoverage: 0.75,
		DecoyFraction:   0.15,
		PBrokenSSH:      0.004,
	}
}

// scaled applies Scale to a base count, keeping at least min.
func (c Config) scaled(base int, min int) int {
	n := int(float64(base)*c.Scale + 0.5)
	if n < min {
		n = min
	}
	return n
}
