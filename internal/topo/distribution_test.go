package topo

import (
	"fmt"
	"testing"

	"aliaslimit/internal/netsim"
)

// These tests pin the calibrated population distributions: if a future
// refactor drifts the generators, the experiment tables silently stop
// matching the paper, so the distributions get their own regression tests.

func statsOver(n int, draw func(id string) int) (mean float64, frac2 float64) {
	total, twos := 0, 0
	for i := 0; i < n; i++ {
		v := draw(fmt.Sprintf("dist-test-%d", i))
		total += v
		if v == 2 {
			twos++
		}
	}
	return float64(total) / float64(n), float64(twos) / float64(n)
}

func newGen(t *testing.T) *generator {
	t.Helper()
	cfg := Default()
	w, err := Build(Config{Seed: 1, Scale: 0.001, SingleSSHServers: 1, MultiSSHHosts: 1,
		SNMPSingleDevices: 1, SNMPRouters: 1, BGPSilent: 1, BGPSingleSpeakers: 1,
		BGPMultiRouters: 1, HitlistCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &generator{w: w, cfg: cfg, fleets: map[string]*sshPersona{}}
}

func TestMultiSSHSizeDistribution(t *testing.T) {
	g := newGen(t)
	mean, frac2 := statsOver(4000, g.multiSSHSize)
	// Paper Figure 3: >60% of SSH sets have exactly two addresses; Table 3:
	// mean ≈ 6 addrs/set.
	if frac2 < 0.58 || frac2 > 0.70 {
		t.Errorf("P(size=2) = %.2f, want ~0.63", frac2)
	}
	if mean < 4.5 || mean > 9 {
		t.Errorf("mean size = %.1f, want ~6-7", mean)
	}
}

func TestSNMPRouterSizeDistribution(t *testing.T) {
	g := newGen(t)
	mean, frac2 := statsOver(4000, g.snmpRouterSize)
	// Paper: <30% two-address sets, mean ≈ 11 addrs/set.
	if frac2 < 0.20 || frac2 > 0.32 {
		t.Errorf("P(size=2) = %.2f, want ~0.26", frac2)
	}
	if mean < 8 || mean > 15 {
		t.Errorf("mean size = %.1f, want ~11", mean)
	}
}

func TestBGPMultiSizeDistribution(t *testing.T) {
	g := newGen(t)
	mean, frac2 := statsOver(4000, g.bgpMultiSize)
	// Paper: BGP sets are larger; 175k addrs over 12k sets ≈ 14.6.
	if frac2 < 0.18 || frac2 > 0.32 {
		t.Errorf("P(size=2) = %.2f, want ~0.25", frac2)
	}
	if mean < 10 || mean > 18 {
		t.Errorf("mean size = %.1f, want ~14", mean)
	}
}

func TestServerIPIDMix(t *testing.T) {
	g := newGen(t)
	counts := map[netsim.IPIDModel]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.ipidForServer(fmt.Sprintf("srv-ipid-%d", i)).model]++
	}
	frac := func(m netsim.IPIDModel) float64 { return float64(counts[m]) / n }
	if f := frac(netsim.IPIDRandom); f < 0.45 || f > 0.55 {
		t.Errorf("random fraction %.2f, want ~0.50", f)
	}
	if f := frac(netsim.IPIDSharedMonotonic); f < 0.15 || f > 0.25 {
		t.Errorf("shared fraction %.2f, want ~0.20 (drives MIDAR's 13%% verifiable)", f)
	}
	if f := frac(netsim.IPIDPerInterface); f > 0.01 {
		t.Errorf("per-interface fraction %.3f, want ~0.002", f)
	}
}

func TestRouterIPIDMix(t *testing.T) {
	g := newGen(t)
	counts := map[netsim.IPIDModel]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.ipidForRouter(fmt.Sprintf("rtr-ipid-%d", i)).model]++
	}
	for _, m := range []netsim.IPIDModel{
		netsim.IPIDSharedMonotonic, netsim.IPIDPerInterface,
		netsim.IPIDRandom, netsim.IPIDZero, netsim.IPIDHighVelocity,
	} {
		if counts[m] == 0 {
			t.Errorf("router IPID mix missing model %v", m)
		}
	}
}

func TestFilteredVantagesIncludesAux(t *testing.T) {
	g := newGen(t)
	sawAux := false
	sawActive := false
	for i := 0; i < 500; i++ {
		for _, label := range g.filteredVantages(fmt.Sprintf("fv-%d", i), 0.3, 0.1) {
			if label == VantageActive {
				sawActive = true
			}
			if label == AuxVantage(0) || label == AuxVantage(3) {
				sawAux = true
			}
		}
	}
	if !sawActive || !sawAux {
		t.Errorf("vantage filtering degenerate: active=%v aux=%v", sawActive, sawAux)
	}
	if AuxVantage(2) != "vp2" {
		t.Errorf("AuxVantage(2) = %q", AuxVantage(2))
	}
}

func TestBrokenSSHHandlerStaysOutOfTruth(t *testing.T) {
	cfg := Default()
	cfg.Scale = 0.02
	cfg.Seed = 23
	cfg.PBrokenSSH = 0.5
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-server device in truth must genuinely speak SSH; broken
	// ones must be absent. Count devices with port 22 bound vs truth.
	bound, inTruth := 0, 0
	for i := 0; ; i++ {
		d := w.Fabric.Device(fmt.Sprintf("srv-%d", i))
		if d == nil {
			break
		}
		if len(d.ServiceAddrs(22)) > 0 {
			bound++
			if len(w.Truth.SSHAddrs[d.ID()]) > 0 {
				inTruth++
			}
		}
	}
	if bound == 0 {
		t.Fatal("no servers found")
	}
	if inTruth >= bound {
		t.Errorf("no broken servers at PBrokenSSH=0.5: bound=%d truth=%d", bound, inTruth)
	}
	if inTruth == 0 {
		t.Error("all servers broken — probability misapplied")
	}
}
