package topo

import (
	"net/netip"

	"aliaslimit/internal/xrand"
)

// ChurnDrawState fingerprints everything the epoch-churn draws depend on:
// the world seed, the ground-truth populations in their sorted-device draw
// order, and the dark-wire ledger. Two worlds with equal draw states make
// identical churn decisions at every future epoch, so a crash-resumed run
// that replays churn without re-scanning can verify — against the value the
// checkpoint manifest recorded — that its world walked the exact mutation
// history of the original run before trusting the log.
//
// The simulation clock is deliberately excluded: replayed epochs skip the
// MIDAR probe rounds (which advance the clock but never mutate churn
// state), so clocks legitimately differ between an original and a resumed
// run while the draw-relevant state is identical.
func (w *World) ChurnDrawState() uint64 {
	k := xrand.NewHasher()
	k.KeyUint(w.Cfg.Seed)
	k.Key("churn-draw-state")
	for _, id := range w.sortedTruthDevices() {
		k.Key(id)
		keyAddrList(&k, w.Truth.SSHAddrs[id])
		keyAddrList(&k, w.Truth.BGPAddrs[id])
		keyAddrList(&k, w.Truth.SNMPAddrs[id])
	}
	k.KeyInt(int64(len(w.darkWires)))
	for _, dw := range w.darkWires {
		k.Key(dw.deviceID)
		k.KeyAddr(dw.addr)
		var flags uint64
		if dw.inSSH {
			flags |= 1
		}
		if dw.inBGP {
			flags |= 2
		}
		if dw.inSNMP {
			flags |= 4
		}
		k.KeyUint(flags)
	}
	return k.Sum64()
}

// keyAddrList folds one truth address list (length-prefixed, in stored
// order — the order the draws walk) into the hasher.
func keyAddrList(k *xrand.Hasher, addrs []netip.Addr) {
	k.KeyInt(int64(len(addrs)))
	for _, a := range addrs {
		k.KeyAddr(a)
	}
}
