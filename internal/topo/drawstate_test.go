package topo

import "testing"

// buildDrawStateWorld makes a tiny world for draw-state tests.
func buildDrawStateWorld(t *testing.T) *World {
	t.Helper()
	cfg := Default()
	cfg.Scale = 0.05
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestChurnDrawStateTracksChurnHistory pins the resume integrity gate: two
// worlds that walked the same churn history agree on their draw state, and
// any divergence in that history (or none at all versus some) changes it.
func TestChurnDrawStateTracksChurnHistory(t *testing.T) {
	a := buildDrawStateWorld(t)
	b := buildDrawStateWorld(t)
	if a.ChurnDrawState() != b.ChurnDrawState() {
		t.Fatal("freshly built identical worlds disagree on draw state")
	}
	initial := a.ChurnDrawState()

	spec := EpochChurn{Renumber: 0.3, Reboot: 0.2, WireDown: 0.2, WireUp: 0.5}
	for e := 1; e <= 2; e++ {
		sa := a.ApplyEpochChurn(spec, e)
		sb := b.ApplyEpochChurn(spec, e)
		if sa != sb {
			t.Fatalf("epoch %d churn diverged between identical worlds: %+v vs %+v", e, sa, sb)
		}
		a.ApplyChurn(0.02, 2*e+1)
		b.ApplyChurn(0.02, 2*e+1)
		if a.ChurnDrawState() != b.ChurnDrawState() {
			t.Fatalf("draw state diverged after identical epoch %d churn", e)
		}
	}
	if a.ChurnDrawState() == initial {
		t.Fatal("two epochs of churn left the draw state unchanged")
	}

	// A world whose history differs (one extra churn pass) must not match.
	c := buildDrawStateWorld(t)
	c.ApplyEpochChurn(spec, 1)
	if c.ChurnDrawState() == a.ChurnDrawState() {
		t.Fatal("worlds with different churn histories share a draw state")
	}
}

// TestChurnDrawStateClockIndependent pins that advancing the simulation
// clock alone (what skipped MIDAR rounds change) never moves the draw state.
func TestChurnDrawStateClockIndependent(t *testing.T) {
	w := buildDrawStateWorld(t)
	before := w.ChurnDrawState()
	w.Clock.Advance(1000000000000) // ~16 minutes of nanoseconds; any amount works
	if w.ChurnDrawState() != before {
		t.Fatal("draw state depends on the clock")
	}
}
