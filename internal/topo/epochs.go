package topo

import (
	"fmt"
	"net/netip"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/xrand"
)

// Epoch churn: the between-snapshot world mutations that make time a
// measurement axis. A longitudinal run (experiments.EnvSeries) interleaves N
// snapshot→churn→scan rounds over one persistent world; between rounds this
// file reassigns addresses, reboots devices into fresh identifiers, and takes
// interfaces down or back up — always updating the ground truth in lockstep,
// so every epoch stays scorable against what the world actually answered.
//
// Determinism contract: every decision is a hash-keyed draw over
// (seed, operation, epoch, entity), never execution order, and all candidate
// enumerations walk sorted device IDs. Applying the same spec to the same
// world at the same epoch therefore always performs the identical mutations.

// EpochChurn is the per-epoch-boundary churn specification.
type EpochChurn struct {
	// Renumber is the probability that a dynamic address is reassigned to a
	// freshly provisioned device between epochs. It covers both the classic
	// single-address server pool and individual interfaces of multi-address
	// SSH hosts (the stale-identifier false-merge population: the old
	// identifier keeps claiming an address that now belongs to someone else).
	Renumber float64
	// Reboot is the probability that a device reboots into fresh identifier
	// material between epochs: a regenerated SSH host key (and software
	// profile), a re-initialised SNMPv3 engine ID, and a re-keyed BGP OPEN
	// personality (fresh router ID and capability presentation; same AS and
	// peering behavior). Addresses and ground truth are unchanged — only
	// identifier persistence breaks.
	Reboot float64
	// WireDown is the probability that a non-primary interface of a
	// multi-address device is de-provisioned for this epoch (maintenance,
	// renumbering windows). The address goes dark and leaves the ground
	// truth until a later epoch restores it.
	WireDown float64
	// WireUp is the probability per epoch that a previously downed wire is
	// restored, rejoining the fabric and the ground truth.
	WireUp float64
}

// active reports whether the spec mutates anything.
func (c EpochChurn) active() bool {
	return c.Renumber > 0 || c.Reboot > 0 || c.WireDown > 0 || c.WireUp > 0
}

// EpochChurnStats counts the mutations one ApplyEpochChurn pass performed.
type EpochChurnStats struct {
	// Renumbered counts reassigned addresses (single-server pool plus
	// multi-address interfaces).
	Renumbered int
	// Rebooted counts devices whose identifier material was regenerated.
	Rebooted int
	// WiresDown / WiresUp count interface de-provisionings and restorations.
	WiresDown int
	// WiresUp counts restored interfaces.
	WiresUp int
}

// darkWire remembers a de-provisioned interface so a later epoch can restore
// it — including which ground-truth populations the address belonged to.
type darkWire struct {
	deviceID string
	addr     netip.Addr
	inSSH    bool
	inBGP    bool
	inSNMP   bool
}

// ApplyEpochChurn mutates the world between measurement epochs according to
// spec, keeping the ground truth consistent with what the fabric now answers.
// epoch must be >= 1 and unique per boundary (it keys the draws). Call it
// strictly between scans, like ApplyChurn. Deterministic per (world seed,
// spec, epoch).
func (w *World) ApplyEpochChurn(spec EpochChurn, epoch int) EpochChurnStats {
	var st EpochChurnStats
	if !spec.active() {
		return st
	}
	ek := fmt.Sprint(epoch)
	// Restore first: a wire that comes back up this epoch is visible to this
	// epoch's snapshot, and cannot be re-downed in the same pass (downWires
	// skips the just-restored addresses).
	var restored map[netip.Addr]bool
	st.WiresUp, restored = w.restoreWires(spec.WireUp, ek)
	st.WiresDown = w.downWires(spec.WireDown, ek, restored)
	if spec.Renumber > 0 {
		// Single-address dynamic pool: the paper's intra-gap churn mechanism,
		// on a round number that can never collide with the intra-epoch
		// rounds (which are odd; see experiments.EnvSeries).
		st.Renumbered += w.ApplyChurn(spec.Renumber, 2*epoch)
		st.Renumbered += w.renumberInterfaces(spec.Renumber, epoch, ek)
	}
	st.Rebooted = w.rebootDevices(spec.Reboot, ek)
	return st
}

// removeTruth drops addr from the device's list in m without creating empty
// entries for devices the map never knew.
func removeTruth(m map[string][]netip.Addr, id string, addr netip.Addr) {
	if list, ok := m[id]; ok {
		m[id] = removeAddr(list, addr)
	}
}

// containsAddr reports whether list holds addr.
func containsAddr(list []netip.Addr, addr netip.Addr) bool {
	for _, a := range list {
		if a == addr {
			return true
		}
	}
	return false
}

// downWires de-provisions non-primary interfaces of multi-address devices:
// the address is unbound from the fabric and removed from every ground-truth
// population it belonged to, with a darkWire record kept for restoration.
// Addresses in skip (restored earlier in the same pass) are left alone.
func (w *World) downWires(frac float64, ek string, skip map[netip.Addr]bool) int {
	if frac <= 0 {
		return 0
	}
	n := 0
	// One streaming hasher per phase: the (seed, operation, epoch) prefix is
	// hashed once, then copied per draw — bit-identical to the historical
	// Prob(fmt.Sprint(seed), "wire-down", ek, id, a.String()) keys, with zero
	// per-draw allocations.
	prefix := xrand.NewHasher()
	prefix.KeyUint(w.Cfg.Seed)
	prefix.Key("wire-down")
	prefix.Key(ek)
	for _, id := range w.sortedTruthDevices() {
		addrs := w.truthAddrs(id)
		if len(addrs) < 2 {
			continue
		}
		d := w.Fabric.Device(id)
		if d == nil {
			continue
		}
		// The first truth address stays up, so a device never goes fully
		// dark from wire churn alone.
		for _, a := range addrs[1:] {
			if skip[a] {
				continue
			}
			k := prefix
			k.Key(id)
			k.KeyAddr(a)
			if k.Prob() >= frac {
				continue
			}
			if w.Fabric.Lookup(a) != d {
				continue // churned away or already dark
			}
			w.Fabric.Unbind(a)
			rec := darkWire{deviceID: id, addr: a,
				inSSH:  containsAddr(w.Truth.SSHAddrs[id], a),
				inBGP:  containsAddr(w.Truth.BGPAddrs[id], a),
				inSNMP: containsAddr(w.Truth.SNMPAddrs[id], a),
			}
			removeTruth(w.Truth.SSHAddrs, id, a)
			removeTruth(w.Truth.BGPAddrs, id, a)
			removeTruth(w.Truth.SNMPAddrs, id, a)
			w.darkWires = append(w.darkWires, rec)
			n++
		}
	}
	return n
}

// restoreWires re-binds a fraction of dark wires and returns their addresses
// to the ground-truth populations they came from, reporting which addresses
// came back up.
func (w *World) restoreWires(frac float64, ek string) (int, map[netip.Addr]bool) {
	if frac <= 0 || len(w.darkWires) == 0 {
		return 0, nil
	}
	n := 0
	restored := make(map[netip.Addr]bool)
	kept := w.darkWires[:0]
	prefix := xrand.NewHasher()
	prefix.KeyUint(w.Cfg.Seed)
	prefix.Key("wire-up")
	prefix.Key(ek)
	for _, rec := range w.darkWires {
		k := prefix
		k.Key(rec.deviceID)
		k.KeyAddr(rec.addr)
		up := k.Prob() < frac
		// An address churned to a replacement device while dark stays with
		// its new owner; the old wire record is then obsolete.
		if conflict := w.Fabric.Lookup(rec.addr); conflict != nil {
			continue
		}
		if !up {
			kept = append(kept, rec)
			continue
		}
		if err := w.Fabric.Bind(rec.addr, rec.deviceID); err != nil {
			continue
		}
		if rec.inSSH {
			w.Truth.SSHAddrs[rec.deviceID] = append(w.Truth.SSHAddrs[rec.deviceID], rec.addr)
		}
		if rec.inBGP {
			w.Truth.BGPAddrs[rec.deviceID] = append(w.Truth.BGPAddrs[rec.deviceID], rec.addr)
		}
		if rec.inSNMP {
			w.Truth.SNMPAddrs[rec.deviceID] = append(w.Truth.SNMPAddrs[rec.deviceID], rec.addr)
		}
		restored[rec.addr] = true
		n++
	}
	w.darkWires = kept
	return n, restored
}

// renumberInterfaces reassigns individual interfaces of multi-address SSH
// hosts to freshly provisioned single servers. This is the stale-identifier
// population: the host's identifier observed in an earlier epoch still claims
// the address, but the address now belongs to a new device — exactly the
// false merge a naive cumulative union of epochs commits.
func (w *World) renumberInterfaces(frac float64, epoch int, ek string) int {
	n := 0
	prefix := xrand.NewHasher()
	prefix.KeyUint(w.Cfg.Seed)
	prefix.Key("epoch-renum")
	prefix.Key(ek)
	for _, id := range w.sortedTruthDevices() {
		addrs := w.Truth.SSHAddrs[id]
		if len(addrs) < 2 {
			continue
		}
		d := w.Fabric.Device(id)
		if d == nil {
			continue
		}
		// Walk a snapshot: the loop edits the truth list it reads.
		for _, a := range append([]netip.Addr(nil), addrs[1:]...) {
			k := prefix
			k.Key(id)
			k.KeyAddr(a)
			if k.Prob() >= frac {
				continue
			}
			if w.Fabric.Lookup(a) != d {
				continue
			}
			w.Fabric.Unbind(a)
			g := &generator{w: w, cfg: w.Cfg, fleets: make(map[string]*sshPersona)}
			newID := fmt.Sprintf("%s-ren%d-%s", id, epoch, a)
			if err := g.replacementServer(newID, a); err != nil {
				continue // address left dark — also realistic
			}
			removeTruth(w.Truth.SSHAddrs, id, a)
			removeTruth(w.Truth.BGPAddrs, id, a)
			removeTruth(w.Truth.SNMPAddrs, id, a)
			n++
		}
	}
	return n
}

// rebootDevices regenerates identifier material for a fraction of devices:
// a fresh SSH host key and software profile, a re-initialised SNMPv3 engine
// ID, and a re-keyed BGP OPEN personality. The device keeps its addresses
// and service ACLs, so the ground truth is untouched — the alias structure
// is intact but must be re-learned from the new identifiers, which is what
// the persistence metrics measure.
func (w *World) rebootDevices(frac float64, ek string) int {
	if frac <= 0 {
		return 0
	}
	n := 0
	g := &generator{w: w, cfg: w.Cfg}
	prefix := xrand.NewHasher()
	prefix.KeyUint(w.Cfg.Seed)
	prefix.Key("reboot")
	prefix.Key(ek)
	for _, id := range w.sortedTruthDevices() {
		k := prefix
		k.Key(id)
		if k.Prob() >= frac {
			continue
		}
		d := w.Fabric.Device(id)
		if d == nil {
			continue
		}
		tag := fmt.Sprintf("%s#boot-%s", id, ek)
		rebooted := false
		if len(w.Truth.SSHAddrs[id]) > 0 {
			if acl := d.ServiceAddrs(22); len(acl) > 0 {
				profile := g.pickProfile(d.Kind() == netsim.KindRouter, tag)
				d.SetService(22, sshwire.NewServer(sshwire.ServerConfig{
					Banner:           profile.Banner,
					Algorithms:       profile.Algorithms,
					HostKey:          g.hostKey(tag),
					HandshakeTimeout: simHandshakeTimeout,
				}), acl...)
				rebooted = true
			}
		}
		if len(w.Truth.SNMPAddrs[id]) > 0 {
			if acl := d.UDPServiceAddrs(snmpv3.Port); len(acl) > 0 {
				enterprise := uint32(2000 + g.intn(8000, tag, "vendor"))
				d.SetUDPService(snmpv3.Port, snmpv3.NewAgent(snmpv3.AgentConfig{
					EngineID:    snmpv3.NewEngineID(enterprise, xrand.Hash64(g.sk(tag, "engine")...)),
					EngineBoots: int64(1 + g.intn(40, tag, "boots")),
					BootTime:    w.Clock.Now(),
				}).Handle, acl...)
				rebooted = true
			}
		}
		if len(w.Truth.BGPAddrs[id]) > 0 {
			// BGP re-keying: the rebooted router comes back with a fresh
			// router ID (operators commonly derive it from a loopback that
			// was renumbered, or it reverts to an auto-selected value) and a
			// re-negotiated capability presentation — a new OPEN identifier.
			// ASN, peering behavior, and address families survive the
			// reboot, and the device keeps answering on the same addresses,
			// so the ground-truth lineage is untouched: the alias structure
			// is intact but must be re-learned, exactly as for SSH and
			// SNMPv3.
			if cfg, ok := w.bgpSpeakers[id]; ok && len(d.ServiceAddrs(179)) > 0 {
				cfg.RouterID = uint32(xrand.Hash64(g.sk(tag, "router-id")...))
				cfg.HoldTime = 90
				if g.prob(tag, "hold") < 0.3 {
					cfg.HoldTime = 180
				}
				cfg.CiscoRouteRefresh = g.prob(tag, "cisco") < 0.6
				cfg.OneParamPerCapability = g.prob(tag, "pack") < 0.6
				d.SetService(179, bgp.NewSpeaker(cfg))
				// Consecutive reboots evolve from the latest personality.
				w.bgpSpeakers[id] = cfg
				rebooted = true
			}
		}
		if rebooted {
			n++
		}
	}
	return n
}

// Snapshot deep-copies the ground truth. EnvSeries snapshots it at every
// epoch's scan time, so per-epoch scoring judges each measurement against the
// world as it stood when measured, not as it ended up.
func (t *Truth) Snapshot() *Truth {
	cp := &Truth{
		SSHAddrs:  copyTruthMap(t.SSHAddrs),
		BGPAddrs:  copyTruthMap(t.BGPAddrs),
		SNMPAddrs: copyTruthMap(t.SNMPAddrs),
		Fleets:    make(map[string][]string, len(t.Fleets)),
	}
	for k, v := range t.Fleets {
		cp.Fleets[k] = append([]string(nil), v...)
	}
	return cp
}

// copyTruthMap deep-copies one device→addresses map, dropping entries whose
// address list churned away entirely (their devices answer nothing anymore).
func copyTruthMap(m map[string][]netip.Addr) map[string][]netip.Addr {
	out := make(map[string][]netip.Addr, len(m))
	for k, v := range m {
		if len(v) == 0 {
			continue
		}
		out[k] = append([]netip.Addr(nil), v...)
	}
	return out
}
