package topo

import (
	"net/netip"
	"reflect"
	"sort"
	"testing"
)

// epochWorld builds a small world for churn tests.
func epochWorld(t *testing.T) *World {
	t.Helper()
	cfg := Default()
	cfg.Scale = 0.05
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// stormSpec is a heavy churn spec so every mechanism fires at test scale.
var stormSpec = EpochChurn{Renumber: 0.3, Reboot: 0.2, WireDown: 0.2, WireUp: 0.5}

// checkTruthBound asserts the lineage invariant: every ground-truth address
// is currently bound to exactly the device the truth claims.
func checkTruthBound(t *testing.T, w *World) {
	t.Helper()
	for name, m := range map[string]map[string][]netip.Addr{
		"ssh": w.Truth.SSHAddrs, "bgp": w.Truth.BGPAddrs, "snmp": w.Truth.SNMPAddrs,
	} {
		for id, addrs := range m {
			for _, a := range addrs {
				d := w.Fabric.Lookup(a)
				if d == nil || d.ID() != id {
					got := "<unbound>"
					if d != nil {
						got = d.ID()
					}
					t.Fatalf("%s truth: %s claims %s but fabric answers with %s", name, id, a, got)
				}
			}
		}
	}
}

func TestApplyEpochChurnMutatesAndKeepsLineage(t *testing.T) {
	w := epochWorld(t)
	devicesBefore := w.Fabric.NumDevices()
	checkTruthBound(t, w)

	st := w.ApplyEpochChurn(stormSpec, 1)
	if st.Renumbered == 0 || st.Rebooted == 0 || st.WiresDown == 0 {
		t.Fatalf("storm spec left a mechanism idle: %+v", st)
	}
	if w.Fabric.NumDevices() <= devicesBefore {
		t.Fatalf("renumbering should provision replacement devices: %d -> %d",
			devicesBefore, w.Fabric.NumDevices())
	}
	checkTruthBound(t, w)

	// A later epoch restores some dark wires; lineage must survive that too.
	st2 := w.ApplyEpochChurn(stormSpec, 2)
	if st2.WiresUp == 0 {
		t.Fatalf("second epoch restored no wires despite WireUp=%v: %+v", stormSpec.WireUp, st2)
	}
	checkTruthBound(t, w)
}

func TestApplyEpochChurnZeroSpecIsNoop(t *testing.T) {
	w := epochWorld(t)
	before := snapshotSorted(w.Truth)
	if st := w.ApplyEpochChurn(EpochChurn{}, 1); st != (EpochChurnStats{}) {
		t.Fatalf("zero spec mutated the world: %+v", st)
	}
	if !reflect.DeepEqual(before, snapshotSorted(w.Truth)) {
		t.Fatal("zero spec changed the ground truth")
	}
}

func TestApplyEpochChurnDeterministic(t *testing.T) {
	run := func() (EpochChurnStats, map[string][]string) {
		w := epochWorld(t)
		st := w.ApplyEpochChurn(stormSpec, 1)
		return st, snapshotSorted(w.Truth)
	}
	st1, truth1 := run()
	st2, truth2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ between identical runs: %+v vs %+v", st1, st2)
	}
	if !reflect.DeepEqual(truth1, truth2) {
		t.Fatal("ground truth differs between identical runs")
	}
}

func TestTruthSnapshotIsDeep(t *testing.T) {
	w := epochWorld(t)
	snap := w.Truth.Snapshot()
	before := snapshotSorted(snap)
	w.ApplyEpochChurn(stormSpec, 1)
	if !reflect.DeepEqual(before, snapshotSorted(snap)) {
		t.Fatal("churn after Snapshot changed the snapshot")
	}
}

// snapshotSorted flattens a Truth into a comparable, sorted form.
func snapshotSorted(tr *Truth) map[string][]string {
	out := make(map[string][]string)
	add := func(prefix string, m map[string][]netip.Addr) {
		for id, addrs := range m {
			if len(addrs) == 0 {
				continue
			}
			strs := make([]string, len(addrs))
			for i, a := range addrs {
				strs[i] = a.String()
			}
			sort.Strings(strs)
			out[prefix+id] = strs
		}
	}
	add("ssh/", tr.SSHAddrs)
	add("bgp/", tr.BGPAddrs)
	add("snmp/", tr.SNMPAddrs)
	return out
}
