package topo

import (
	"context"
	"net"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/ident"
)

// epochWorld builds a small world for churn tests.
func epochWorld(t *testing.T) *World {
	t.Helper()
	cfg := Default()
	cfg.Scale = 0.05
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// stormSpec is a heavy churn spec so every mechanism fires at test scale.
var stormSpec = EpochChurn{Renumber: 0.3, Reboot: 0.2, WireDown: 0.2, WireUp: 0.5}

// checkTruthBound asserts the lineage invariant: every ground-truth address
// is currently bound to exactly the device the truth claims.
func checkTruthBound(t *testing.T, w *World) {
	t.Helper()
	for name, m := range map[string]map[string][]netip.Addr{
		"ssh": w.Truth.SSHAddrs, "bgp": w.Truth.BGPAddrs, "snmp": w.Truth.SNMPAddrs,
	} {
		for id, addrs := range m {
			for _, a := range addrs {
				d := w.Fabric.Lookup(a)
				if d == nil || d.ID() != id {
					got := "<unbound>"
					if d != nil {
						got = d.ID()
					}
					t.Fatalf("%s truth: %s claims %s but fabric answers with %s", name, id, a, got)
				}
			}
		}
	}
}

func TestApplyEpochChurnMutatesAndKeepsLineage(t *testing.T) {
	w := epochWorld(t)
	devicesBefore := w.Fabric.NumDevices()
	checkTruthBound(t, w)

	st := w.ApplyEpochChurn(stormSpec, 1)
	if st.Renumbered == 0 || st.Rebooted == 0 || st.WiresDown == 0 {
		t.Fatalf("storm spec left a mechanism idle: %+v", st)
	}
	if w.Fabric.NumDevices() <= devicesBefore {
		t.Fatalf("renumbering should provision replacement devices: %d -> %d",
			devicesBefore, w.Fabric.NumDevices())
	}
	checkTruthBound(t, w)

	// A later epoch restores some dark wires; lineage must survive that too.
	st2 := w.ApplyEpochChurn(stormSpec, 2)
	if st2.WiresUp == 0 {
		t.Fatalf("second epoch restored no wires despite WireUp=%v: %+v", stormSpec.WireUp, st2)
	}
	checkTruthBound(t, w)
}

func TestApplyEpochChurnZeroSpecIsNoop(t *testing.T) {
	w := epochWorld(t)
	before := snapshotSorted(w.Truth)
	if st := w.ApplyEpochChurn(EpochChurn{}, 1); st != (EpochChurnStats{}) {
		t.Fatalf("zero spec mutated the world: %+v", st)
	}
	if !reflect.DeepEqual(before, snapshotSorted(w.Truth)) {
		t.Fatal("zero spec changed the ground truth")
	}
}

func TestApplyEpochChurnDeterministic(t *testing.T) {
	run := func() (EpochChurnStats, map[string][]string) {
		w := epochWorld(t)
		st := w.ApplyEpochChurn(stormSpec, 1)
		return st, snapshotSorted(w.Truth)
	}
	st1, truth1 := run()
	st2, truth2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ between identical runs: %+v vs %+v", st1, st2)
	}
	if !reflect.DeepEqual(truth1, truth2) {
		t.Fatal("ground truth differs between identical runs")
	}
}

// bgpIdentOf dials one address through the fabric and extracts its OPEN
// identifier.
func bgpIdentOf(t *testing.T, w *World, addr netip.Addr) ident.Identifier {
	t.Helper()
	v := w.Fabric.Vantage(VantageActive)
	conn, err := v.DialContext(context.Background(), "tcp",
		net.JoinHostPort(addr.String(), "179"))
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	res, err := bgp.Scan(conn, 30*time.Second)
	if err != nil {
		t.Fatalf("bgp scan %s: %v", addr, err)
	}
	id, ok := ident.FromBGP(res)
	if !ok {
		t.Fatalf("%s sent no identifiable OPEN", addr)
	}
	return id
}

// TestRebootRekeysBGP asserts the reboot mechanism regenerates the BGP OPEN
// identifier while leaving the ground-truth lineage untouched: the same
// addresses answer, from the same device, with a different wire identity.
func TestRebootRekeysBGP(t *testing.T) {
	w := epochWorld(t)
	// Pick an identifiable speaker the generator planned.
	var dev string
	var addr netip.Addr
	for _, id := range w.sortedTruthDevices() {
		if addrs := w.Truth.BGPAddrs[id]; len(addrs) > 0 {
			dev, addr = id, addrs[0]
			break
		}
	}
	if dev == "" {
		t.Fatal("world has no identifiable BGP speakers")
	}
	before := bgpIdentOf(t, w, addr)
	cfgBefore := w.bgpSpeakers[dev]
	truthBefore := snapshotSorted(w.Truth)

	// Reboot every device: the chosen speaker must re-key.
	if n := w.rebootDevices(1.0, "42"); n == 0 {
		t.Fatal("full-probability reboot touched nothing")
	}
	after := bgpIdentOf(t, w, addr)
	if after == before {
		t.Fatalf("reboot kept the BGP identifier %s", before.Digest[:12])
	}
	if w.bgpSpeakers[dev].RouterID == cfgBefore.RouterID {
		t.Fatal("reboot did not rotate the router ID")
	}
	if w.bgpSpeakers[dev].ASN != cfgBefore.ASN {
		t.Fatal("reboot changed the speaker's ASN — identity churn must not move ASes")
	}
	if !reflect.DeepEqual(truthBefore, snapshotSorted(w.Truth)) {
		t.Fatal("reboot changed the ground truth — lineage must survive a re-key")
	}
	checkTruthBound(t, w)

	// Determinism: the same reboot draw on a fresh world re-keys to the
	// identical new identity.
	w2 := epochWorld(t)
	w2.rebootDevices(1.0, "42")
	if got := bgpIdentOf(t, w2, addr); got != after {
		t.Fatalf("re-keyed identity differs between identical runs: %s vs %s",
			got.Digest[:12], after.Digest[:12])
	}
}

func TestTruthSnapshotIsDeep(t *testing.T) {
	w := epochWorld(t)
	snap := w.Truth.Snapshot()
	before := snapshotSorted(snap)
	w.ApplyEpochChurn(stormSpec, 1)
	if !reflect.DeepEqual(before, snapshotSorted(snap)) {
		t.Fatal("churn after Snapshot changed the snapshot")
	}
}

// snapshotSorted flattens a Truth into a comparable, sorted form.
func snapshotSorted(tr *Truth) map[string][]string {
	out := make(map[string][]string)
	add := func(prefix string, m map[string][]netip.Addr) {
		for id, addrs := range m {
			if len(addrs) == 0 {
				continue
			}
			strs := make([]string, len(addrs))
			for i, a := range addrs {
				strs[i] = a.String()
			}
			sort.Strings(strs)
			out[prefix+id] = strs
		}
	}
	add("ssh/", tr.SSHAddrs)
	add("bgp/", tr.BGPAddrs)
	add("snmp/", tr.SNMPAddrs)
	return out
}
