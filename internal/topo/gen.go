package topo

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"time"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/xrand"
)

// simHandshakeTimeout bounds a simulated SSH server's handshake. A real
// daemon's few-second deadline defends against stalled peers; on the fabric
// every client drives the exchange promptly or closes, so the deadline is
// purely an anti-hang backstop. It sits far above plausible goroutine
// starvation: with the concurrent collection pipeline (three protocol sweeps
// × hundreds of workers, worse under -race) the default 5 s can expire on a
// starved but healthy handshake and nondeterministically lose an
// observation.
const simHandshakeTimeout = 2 * time.Minute

// seedReader adapts a SplitMix64 stream to io.Reader so host keys are
// deterministic functions of device identity.
type seedReader struct{ s *xrand.SplitMix64 }

// Read implements io.Reader with pseudo-random bytes.
func (r seedReader) Read(p []byte) (int, error) {
	var buf [8]byte
	for i := 0; i < len(p); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], r.s.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

// newSeedReader builds a reader keyed by labels (and the world seed).
func (g *generator) newSeedReader(labels ...string) io.Reader {
	key := append([]string{fmt.Sprint(g.cfg.Seed)}, labels...)
	return seedReader{s: xrand.NewSplitMix64(xrand.Hash64(key...))}
}

// generator carries the in-progress build. The fleets map and the overlap /
// router-ID registries are planning-phase state: they are resolved
// sequentially in canonical device order (see plan.go) because later devices
// clone earlier personalities.
type generator struct {
	w      *World
	cfg    Config
	fleets map[string]*sshPersona
	bgpIDs []uint32
	// overlapSSH registers the SSH personalities of multi-service routers
	// so later routers can clone them (PCloneSSHKeyOverlap).
	overlapSSH []*sshPersona
	// overlapEngines registers SNMPv3 engine IDs of multi-service routers
	// for the analogous cloning (PCloneEngineID).
	overlapEngines [][]byte
	// plans accumulates the device plans in canonical order.
	plans []*devicePlan
}

// sk returns a per-entity probability key incorporating the world seed.
func (g *generator) sk(labels ...string) []string {
	return append([]string{fmt.Sprint(g.cfg.Seed)}, labels...)
}

func (g *generator) prob(labels ...string) float64 { return xrand.Prob(g.sk(labels...)...) }
func (g *generator) intn(n int, labels ...string) int {
	return xrand.Intn(n, g.sk(labels...)...)
}

// hostKey derives an ed25519 host key for a label.
func (g *generator) hostKey(label string) ed25519.PrivateKey {
	_, priv, err := sshwire.GenerateEd25519(g.newSeedReader("hostkey", label))
	if err != nil {
		panic("topo: deterministic keygen cannot fail: " + err.Error())
	}
	return priv
}

// serverProfiles / routerProfiles weight the SSH software mix per device
// class.
var serverProfiles = []struct {
	name string
	w    float64
}{
	{"openssh-9.2-debian", 0.38}, {"openssh-8.9-ubuntu", 0.30},
	{"openssh-7.4-centos", 0.17}, {"dropbear-2022", 0.15},
}

var routerProfiles = []struct {
	name string
	w    float64
}{
	{"cisco-ios-xe", 0.40}, {"mikrotik-routeros", 0.25},
	{"juniper-junos", 0.20}, {"dropbear-2022", 0.15},
}

// pickProfile draws a weighted profile.
func (g *generator) pickProfile(router bool, labels ...string) *sshwire.Profile {
	pool := serverProfiles
	if router {
		pool = routerProfiles
	}
	x := g.prob(append(labels, "profile")...)
	for _, p := range pool {
		x -= p.w
		if x <= 0 {
			return sshwire.ProfileByName(p.name)
		}
	}
	return sshwire.ProfileByName(pool[len(pool)-1].name)
}

// ipidChoice assigns an IPID temperament.
type ipidChoice struct {
	model    netsim.IPIDModel
	velocity float64
	pingable bool
}

// ipidForServer: cloud VMs mostly use per-connection random or constant
// IPIDs; a minority keep a slow shared counter.
func (g *generator) ipidForServer(id string) ipidChoice {
	r := g.prob(id, "ipid")
	c := ipidChoice{pingable: g.prob(id, "ping") < 0.75}
	switch {
	case r < 0.50:
		c.model = netsim.IPIDRandom
	case r < 0.80:
		c.model = netsim.IPIDZero
	case r < 0.998:
		c.model = netsim.IPIDSharedMonotonic
		c.velocity = xrand.Exp(40, g.sk(id, "vel")...)
	default:
		c.model = netsim.IPIDPerInterface
	}
	return c
}

// ipidForRouter: network devices keep shared counters more often, but many
// are per-interface, random, or simply too busy — which is why MIDAR can
// verify only a small slice of the paper's sample.
func (g *generator) ipidForRouter(id string) ipidChoice {
	r := g.prob(id, "ipid")
	c := ipidChoice{pingable: g.prob(id, "ping") < 0.90}
	switch {
	case r < 0.30:
		c.model = netsim.IPIDSharedMonotonic
		c.velocity = xrand.Exp(60, g.sk(id, "vel")...)
	case r < 0.60:
		c.model = netsim.IPIDPerInterface
	case r < 0.80:
		c.model = netsim.IPIDRandom
	case r < 0.90:
		c.model = netsim.IPIDZero
	default:
		c.model = netsim.IPIDHighVelocity
		c.velocity = 30000 + xrand.Exp(100000, g.sk(id, "vel")...)
	}
	return c
}

// filteredVantages rolls the IDS/coverage dice for a device: the primary
// active/censys pair, plus the auxiliary geographic vantage labels vp0..vpN
// used by the multi-vantage extension experiment (each draws the same
// filtering probability independently, modelling location-dependent
// reachability à la Wan et al., IMC '20).
func (g *generator) filteredVantages(id string, pActive, pCensys float64) []string {
	var out []string
	if g.prob(id, "flt-active") < pActive {
		out = append(out, VantageActive)
	} else if g.prob(id, "flt-censys") < pCensys {
		out = append(out, VantageCensys)
	}
	for i := 0; i < AuxVantages; i++ {
		if g.prob(id, "flt-vp", fmt.Sprint(i)) < pActive {
			out = append(out, AuxVantage(i))
		}
	}
	return out
}

// run generates every population: plan sequentially, build in parallel,
// commit sequentially (see plan.go for the phase contract).
func (g *generator) run() error {
	g.planSingleSSHServers()
	g.planMultiSSHHosts()
	g.planSNMPSingles()
	g.planSNMPRouters()
	g.planBGPPopulations()
	g.decoys()
	if err := g.buildDevices(); err != nil {
		return err
	}
	return g.commit()
}

// planSSH resolves the SSH personality for a device, honouring fleets and
// per-interface capability variation. Key generation is deferred to the
// build phase; the persona records the derivation label.
func (g *generator) planSSH(id string, router bool, addrs []netip.Addr) *sshPlan {
	var persona *sshPersona
	asn := g.w.AddrASN[addrs[0]]
	if g.prob(id, "fleet") < g.cfg.PSharedSSHKey {
		slot := g.intn(2, id, "fleet-slot")
		label := fmt.Sprintf("fleet-%d-%d", asn, slot)
		fl := g.fleets[label]
		if fl == nil {
			fl = &sshPersona{
				label:    label,
				keyLabel: label,
				profile:  g.pickProfile(router, label),
			}
			g.fleets[label] = fl
		}
		persona = fl
		g.w.Truth.Fleets[label] = append(g.w.Truth.Fleets[label], id)
	} else {
		persona = &sshPersona{label: id, keyLabel: id, profile: g.pickProfile(router, id)}
	}
	sp := &sshPlan{persona: persona}
	if len(addrs) >= 2 && g.prob(id, "iface-var") < g.cfg.PSSHPerIfaceVariation {
		sp.varied = true
		sp.variedAddr = addrs[0]
	}
	return sp
}

// planSSHOverlap resolves the SSH personality of a multi-service router:
// with probability PCloneSSHKeyOverlap it clones the key and software of a
// previously planned multi-service router (cloned management configs),
// which makes the SSH technique merge two distinct devices — the
// disagreement the paper's Table 2 counts.
func (g *generator) planSSHOverlap(id string) *sshPlan {
	var persona *sshPersona
	if len(g.overlapSSH) > 0 && g.prob(id, "clone-ssh") < g.cfg.PCloneSSHKeyOverlap {
		persona = g.overlapSSH[g.intn(len(g.overlapSSH), id, "clone-pick")]
	} else {
		persona = &sshPersona{
			label:    "overlap-" + id,
			keyLabel: id,
			profile:  g.pickProfile(true, id),
		}
		g.overlapSSH = append(g.overlapSSH, persona)
	}
	g.w.Truth.Fleets[persona.label] = append(g.w.Truth.Fleets[persona.label], id)
	return &sshPlan{persona: persona}
}

// planAgentOverlap resolves the SNMPv3 agent of a multi-service router, with
// probability PCloneEngineID reusing a sibling's engine ID (cloned configs
// ship duplicate engine IDs in the wild).
func (g *generator) planAgentOverlap(id string) snmpv3.AgentConfig {
	if len(g.overlapEngines) > 0 && g.prob(id, "clone-eng") < g.cfg.PCloneEngineID {
		eng := g.overlapEngines[g.intn(len(g.overlapEngines), id, "clone-eng-pick")]
		return snmpv3.AgentConfig{
			EngineID:    eng,
			EngineBoots: int64(1 + g.intn(40, id, "boots")),
			BootTime:    g.w.Clock.Now().Add(-time.Duration(g.intn(10_000_000, id, "uptime")) * time.Second),
		}
	}
	cfg := g.planAgent(id)
	g.overlapEngines = append(g.overlapEngines, cfg.EngineID)
	return cfg
}

// assignPTRNames populates the world's reverse zone for a device: partial
// coverage, structured names on routers, hostnames or generic templates on
// servers, and the occasional shared service name — the raw material (and
// the noise) of the DNS-based inference baseline.
func (g *generator) assignPTRNames(d *netsim.Device, kind netsim.DeviceKind, as *AS) {
	id := d.ID()
	// A sliver of addresses point at a shared service name: classic false
	// pairs for name-based techniques.
	if g.prob(id, "ptr-cdn") < 0.005 {
		for _, a := range d.Addrs() {
			g.w.PTR[a] = "www.shared-cdn.example.net"
		}
		return
	}
	serverHostname := g.prob(id, "ptr-hostname") < 0.45
	v4i, v6i := 0, 0
	for _, a := range d.Addrs() {
		coverage := 0.60
		if a.Is6() {
			coverage = 0.35
		}
		if g.prob(id, "ptr-cov", a.String()) >= coverage {
			continue
		}
		switch {
		case kind == netsim.KindRouter:
			// Interface-structured router names; the same interface index
			// in each family maps to one name, which is what makes PTR
			// pairing work on deliberately named routers.
			idx := v4i
			if a.Is6() {
				idx = v6i
			}
			g.w.PTR[a] = fmt.Sprintf("ge-0-0-%d.%s.as%d.example.net", idx, id, as.ASN)
		case serverHostname:
			g.w.PTR[a] = fmt.Sprintf("%s.as%d.example.net", id, as.ASN)
		default:
			g.w.PTR[a] = fmt.Sprintf("host-%s.dynamic.as%d.example.net",
				strings.NewReplacer(".", "-", ":", "-").Replace(a.String()), as.ASN)
		}
		if a.Is4() {
			v4i++
		} else {
			v6i++
		}
	}
}

// --- populations ---

// planSingleSSHServers: the dominant SSH population — one v4 address
// (sometimes dual-stack, sometimes v6-only), one unique host key, no
// aliases.
func (g *generator) planSingleSSHServers() {
	n := g.cfg.scaled(g.cfg.SingleSSHServers, 10)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("srv-%d", i)
		as := pickAS(g.w.ASes, KindCloud, g.sk(id, "as")...)
		var addrs []netip.Addr
		v6only := g.prob(id, "v6only") < g.cfg.PServerV6Only
		if !v6only {
			addrs = append(addrs, as.AllocV4())
		}
		if v6only || g.prob(id, "v6") < g.cfg.PServerV6 {
			addrs = append(addrs, as.AllocV6())
		}
		p := g.planDevice(id, netsim.KindServer, addrs, nil,
			g.ipidForServer(id),
			g.filteredVantages(id, g.cfg.PCloudFiltersActive, g.cfg.PCloudMissedByCensys), as)
		if g.prob(id, "broken") < g.cfg.PBrokenSSH {
			p.brokenSSH = true
		} else {
			p.ssh = g.planSSH(id, false, addrs)
			p.churnable = !v6only && len(addrs) == 1
		}
	}
}

// replacementServer stands up a fresh single server on a churned address.
func (g *generator) replacementServer(id string, addr netip.Addr) error {
	as := g.w.ASByNumber(g.w.AddrASN[addr])
	if as == nil {
		as = g.w.ASes[0]
	}
	d, err := netsim.NewDevice(netsim.DeviceConfig{
		ID: id, ASN: as.ASN, Kind: netsim.KindServer, Addrs: []netip.Addr{addr},
		IPID: netsim.IPIDRandom, IPIDSeed: xrand.Hash64(g.sk(id)...),
		FilteredVantages: g.filteredVantages(id, g.cfg.PCloudFiltersActive, 0),
	}, g.w.Clock.Now())
	if err != nil {
		return err
	}
	if err := g.w.Fabric.AddDevice(d); err != nil {
		return err
	}
	sp := g.planSSH(id, false, []netip.Addr{addr})
	d.SetService(22, g.buildSSHServer(sp, g.hostKey(sp.persona.keyLabel)))
	g.w.Truth.SSHAddrs[d.ID()] = d.ServiceAddrs(22)
	g.w.registerTruthDevice(d.ID())
	return nil
}

// multiSSHSize draws the v4 alias-set size for a multi-address SSH host:
// >60% have exactly two addresses (the paper's Figure 3), with a heavy tail.
func (g *generator) multiSSHSize(id string) int {
	r := g.prob(id, "size")
	switch {
	case r < 0.63:
		return 2
	case r < 0.89:
		return 3 + g.intn(7, id, "size-mid")
	case r < 0.99:
		return 10 + xrand.Zipf(1.5, 89, g.sk(id, "size-hi")...)
	default:
		return 100 + xrand.Zipf(1.3, 300, g.sk(id, "size-xl")...)
	}
}

// planMultiSSHHosts: hosts with several SSH-responsive addresses — the
// source of every SSH alias set.
func (g *generator) planMultiSSHHosts() {
	n := g.cfg.scaled(g.cfg.MultiSSHHosts, 4)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("mssh-%d", i)
		kind := KindCloud
		if g.prob(id, "as-kind") < 0.30 {
			kind = KindISP
		}
		as := pickAS(g.w.ASes, kind, g.sk(id, "as")...)
		k := g.multiSSHSize(id)
		// A minority of multi-address hosts span two ASes of the same
		// organisation (Amazon's 16509/14618 split, fleet anycast): the
		// reason a few percent of SSH alias sets cross AS boundaries in
		// the paper's Figure 5.
		var secondAS *AS
		if g.prob(id, "second-as") < 0.07 {
			secondAS = pickAS(g.w.ASes, kind, g.sk(id, "as2")...)
		}
		var addrs []netip.Addr
		addrASN := make(map[netip.Addr]uint32)
		for j := 0; j < k; j++ {
			if secondAS != nil && j%3 == 2 {
				a := secondAS.AllocV4()
				addrs = append(addrs, a)
				addrASN[a] = secondAS.ASN
				continue
			}
			addrs = append(addrs, as.AllocV4())
		}
		switch rv6 := g.prob(id, "v6"); {
		case rv6 < g.cfg.PMultiSSHManyV6:
			for j := 0; j < 2+g.intn(9, id, "v6n"); j++ {
				addrs = append(addrs, as.AllocV6())
			}
		case rv6 < g.cfg.PMultiSSHManyV6+g.cfg.PMultiSSHOneV6:
			addrs = append(addrs, as.AllocV6())
		}
		p := g.planDevice(id, netsim.KindServer, addrs, addrASN,
			g.ipidForServer(id),
			g.filteredVantages(id, g.cfg.PCloudFiltersActive, g.cfg.PCloudMissedByCensys), as)
		p.ssh = g.planSSH(id, false, addrs)
		if g.prob(id, "acl") < g.cfg.PSSHAcl && len(addrs) >= 3 {
			p.ssh.acl = addrs[:len(addrs)*2/3]
		}
	}
}

// planSNMPSingles: CPE-class devices with one SNMPv3-responsive address,
// plus the IPv6-only singles population.
func (g *generator) planSNMPSingles() {
	n := g.cfg.scaled(g.cfg.SNMPSingleDevices, 10)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("cpe-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		addrs := []netip.Addr{as.AllocV4()}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id), nil, as)
		p.snmp = &snmpPlan{cfg: g.planAgent(id)}
	}
	n6 := g.cfg.scaled(g.cfg.SNMPV6OnlySingles, 2)
	for i := 0; i < n6; i++ {
		id := fmt.Sprintf("cpe6-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		addrs := []netip.Addr{as.AllocV6()}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id), nil, as)
		p.snmp = &snmpPlan{cfg: g.planAgent(id)}
	}
}

// planAgent resolves the device's SNMPv3 agent configuration with a unique
// engine ID.
func (g *generator) planAgent(id string) snmpv3.AgentConfig {
	enterprise := uint32(2000 + g.intn(8000, id, "vendor"))
	return snmpv3.AgentConfig{
		EngineID:    snmpv3.NewEngineID(enterprise, xrand.Hash64(g.sk(id, "engine")...)),
		EngineBoots: int64(1 + g.intn(40, id, "boots")),
		BootTime:    g.w.Clock.Now().Add(-time.Duration(g.intn(10_000_000, id, "uptime")) * time.Second),
	}
}

// snmpRouterSize draws interface counts for SNMP routers: fewer two-address
// sets than SSH, more mid-sized sets (Figure 3's SNMPv3 curve).
func (g *generator) snmpRouterSize(id string) int {
	r := g.prob(id, "size")
	switch {
	case r < 0.26:
		return 2
	case r < 0.66:
		return 3 + g.intn(7, id, "size-mid")
	case r < 0.985:
		return 10 + xrand.Zipf(1.4, 69, g.sk(id, "size-hi")...)
	default:
		return 80 + xrand.Zipf(1.3, 220, g.sk(id, "size-xl")...)
	}
}

// planSNMPRouters: multi-interface routers answering SNMPv3 on (most of)
// their interfaces; a small fraction co-host SSH — the SSH↔SNMPv3
// validation population.
func (g *generator) planSNMPRouters() {
	n := g.cfg.scaled(g.cfg.SNMPRouters, 4)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("rtr-%d", i)
		kind := KindISP
		if g.prob(id, "as-kind") < 0.15 {
			kind = KindEnterprise
		}
		as := pickAS(g.w.ASes, kind, g.sk(id, "as")...)
		k := g.snmpRouterSize(id)
		// As with SSH hosts, a few routers carry interfaces numbered from a
		// sibling AS (sub-allocated customer space), giving SNMPv3 its thin
		// multi-AS tail in Figure 5.
		var secondAS *AS
		if g.prob(id, "second-as") < 0.05 {
			secondAS = pickAS(g.w.ASes, KindISP, g.sk(id, "as2")...)
		}
		var addrs []netip.Addr
		addrASN := make(map[netip.Addr]uint32)
		for j := 0; j < k; j++ {
			if secondAS != nil && j%4 == 3 {
				a := secondAS.AllocV4()
				addrs = append(addrs, a)
				addrASN[a] = secondAS.ASN
				continue
			}
			addrs = append(addrs, as.AllocV4())
		}
		if g.prob(id, "v6") < g.cfg.PSNMPRouterV6 {
			nv6 := 1
			if g.prob(id, "v6many") >= g.cfg.PSNMPRouterV6One {
				nv6 = 2 + g.intn(7, id, "v6n")
			}
			for j := 0; j < nv6; j++ {
				addrs = append(addrs, as.AllocV6())
			}
		}
		p := g.planDevice(id, netsim.KindRouter, addrs, addrASN, g.ipidForRouter(id), nil, as)
		var acl []netip.Addr
		if g.prob(id, "acl") < g.cfg.PSNMPAcl && len(addrs) >= 3 {
			acl = addrs[:len(addrs)*3/5]
		}
		p.snmp = &snmpPlan{cfg: g.planAgent(id), acl: acl}
		if g.prob(id, "ssh") < g.cfg.PSNMPRouterSSH {
			// SSH on the same interfaces SNMP answers on, so the two
			// techniques see the same alias structure (§2.6). The overlap
			// personality may be a clone — the validation-disagreement
			// population.
			snmpAddrs := acl
			if len(snmpAddrs) == 0 {
				snmpAddrs = addrs
			}
			p.ssh = g.planSSHOverlap(id)
			p.ssh.acl = snmpAddrs
		}
	}
}

// bgpMultiSize draws responsive-interface counts for identifiable BGP
// border routers: larger sets than SSH/SNMP (Figure 3's BGP curve).
func (g *generator) bgpMultiSize(id string) int {
	r := g.prob(id, "size")
	switch {
	case r < 0.25:
		return 2
	case r < 0.70:
		return 3 + g.intn(8, id, "size-mid")
	case r < 0.98:
		return 11 + xrand.Zipf(1.5, 48, g.sk(id, "size-hi")...)
	default:
		return 60 + xrand.Zipf(1.3, 190, g.sk(id, "size-xl")...)
	}
}

// planSpeaker resolves the device's BGP personality. The router-ID registry
// (duplicate-ID misconfigurations clone earlier routers) makes this
// planning-phase state.
func (g *generator) planSpeaker(id string, as *AS, firstAddr netip.Addr, hasV6 bool, behavior bgp.Behavior) *bgpPlan {
	routerID := addrToU32(firstAddr)
	if len(g.bgpIDs) > 0 && g.prob(id, "dup-id") < g.cfg.PDuplicateBGPID {
		routerID = g.bgpIDs[g.intn(len(g.bgpIDs), id, "dup-pick")]
	}
	g.bgpIDs = append(g.bgpIDs, routerID)
	hold := uint16(90)
	if g.prob(id, "hold") < 0.3 {
		hold = 180
	}
	return &bgpPlan{cfg: bgp.SpeakerConfig{
		ASN:                   as.ASN,
		RouterID:              routerID,
		HoldTime:              hold,
		Behavior:              behavior,
		CiscoRouteRefresh:     g.prob(id, "cisco") < 0.6,
		MPIPv6:                hasV6,
		OneParamPerCapability: g.prob(id, "pack") < 0.6,
	}}
}

// attachBGP sets a device plan's speaker and truth eligibility.
func (p *devicePlan) attachBGP(bp *bgpPlan) {
	p.bgp = bp
	p.bgpTruth = bp.cfg.Behavior != bgp.BehaviorSilentClose
}

// addrToU32 renders an IPv4 address as the router-ID integer; IPv6-only
// routers get a hash-derived ID.
func addrToU32(a netip.Addr) uint32 {
	if a.Is4() {
		b := a.As4()
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return uint32(xrand.Hash64Bytes(a.AsSlice()))
}

// planBGPPopulations plans all four BGP speaker classes.
func (g *generator) planBGPPopulations() {
	// Silent speakers: SYN-responsive on 179, zero identifier yield.
	for i := 0; i < g.cfg.scaled(g.cfg.BGPSilent, 5); i++ {
		id := fmt.Sprintf("bgps-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		addrs := []netip.Addr{as.AllocV4()}
		if g.prob(id, "second") < 0.2 {
			addrs = append(addrs, as.AllocV4())
		}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id), nil, as)
		p.attachBGP(g.planSpeaker(id, as, addrs[0], false, bgp.BehaviorSilentClose))
	}

	// Single-address identifiable speakers.
	for i := 0; i < g.cfg.scaled(g.cfg.BGPSingleSpeakers, 4); i++ {
		id := fmt.Sprintf("bgp1-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		addrs := []netip.Addr{as.AllocV4()}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id),
			g.filteredVantages(id, g.cfg.PBGPFiltersActive, g.cfg.PBGPMissedByCensys), as)
		p.attachBGP(g.planSpeaker(id, as, addrs[0], false, bgp.BehaviorOpenNotify))
	}

	// Multi-interface identifiable border routers.
	for i := 0; i < g.cfg.scaled(g.cfg.BGPMultiRouters, 8); i++ {
		id := fmt.Sprintf("bgpm-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		k := g.bgpMultiSize(id)
		var addrs []netip.Addr
		addrASN := make(map[netip.Addr]uint32)
		multiAS := g.prob(id, "multi-as") < 0.38
		for j := 0; j < k; j++ {
			if multiAS && j > 0 && g.prob(id, "nb", fmt.Sprint(j)) < 0.45 {
				// Interface numbered from a neighbour's space: the reason
				// >35% of BGP sets span multiple ASes.
				nb := pickAS(g.w.ASes, KindISP, g.sk(id, "nb-as", fmt.Sprint(j))...)
				a := nb.AllocV4()
				addrs = append(addrs, a)
				addrASN[a] = nb.ASN
			} else {
				addrs = append(addrs, as.AllocV4())
			}
		}
		hasV6 := g.prob(id, "v6") < g.cfg.PBGPMultiV6
		if hasV6 {
			for j := 0; j < 2+g.intn(7, id, "v6n"); j++ {
				addrs = append(addrs, as.AllocV6())
			}
		}
		p := g.planDevice(id, netsim.KindRouter, addrs, addrASN, g.ipidForRouter(id),
			g.filteredVantages(id, g.cfg.PBGPFiltersActive, g.cfg.PBGPMissedByCensys), as)
		p.attachBGP(g.planSpeaker(id, as, addrs[0], hasV6, bgp.BehaviorOpenNotify))
		if g.prob(id, "snmp") < g.cfg.PBGPRouterSNMP {
			// Plain agent: at this scale the paper's ~5% BGP↔SNMPv3
			// disagreement rounds to zero expected sets, so the clone
			// mechanism is reserved for the larger SSH↔SNMPv3 overlap.
			p.snmp = &snmpPlan{cfg: g.planAgent(id)}
		}
		if g.prob(id, "ssh") < g.cfg.PBGPRouterSSH {
			p.ssh = g.planSSHOverlap(id)
		}
	}

	// IPv6-only speakers.
	for i := 0; i < g.cfg.scaled(g.cfg.BGPV6OnlyMultiRouters, 2); i++ {
		id := fmt.Sprintf("bgp6m-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		var addrs []netip.Addr
		for j := 0; j < 2+g.intn(9, id, "v6n"); j++ {
			addrs = append(addrs, as.AllocV6())
		}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id), nil, as)
		p.attachBGP(g.planSpeaker(id, as, addrs[0], true, bgp.BehaviorOpenNotify))
	}
	for i := 0; i < g.cfg.scaled(g.cfg.BGPV6OnlySingles, 2); i++ {
		id := fmt.Sprintf("bgp61-%d", i)
		as := pickAS(g.w.ASes, KindISP, g.sk(id, "as")...)
		addrs := []netip.Addr{as.AllocV6()}
		p := g.planDevice(id, netsim.KindRouter, addrs, nil, g.ipidForRouter(id), nil, as)
		p.attachBGP(g.planSpeaker(id, as, addrs[0], true, bgp.BehaviorOpenNotify))
	}
}

// fragProb is the probability a device answers fragment-eliciting probes.
func fragProb(kind netsim.DeviceKind) float64 {
	if kind == netsim.KindRouter {
		return 0.30
	}
	return 0.08
}

// brokenSSHHandler models a crashed or tarpitting daemon on TCP/22: the
// handshake completes but only junk follows. Exercises the scanner's error
// paths under failure injection.
type brokenSSHHandler struct{}

// Serve implements netsim.Handler.
func (brokenSSHHandler) Serve(conn net.Conn, sc netsim.ServeContext) {
	defer conn.Close()
	_, _ = conn.Write([]byte("\x00\xffnot-ssh 500 internal daemon error\r\n\r\n"))
	buf := make([]byte, 64)
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, _ = conn.Read(buf)
}

// decoys appends unbound addresses to the scan universe so SYN sweeps see a
// realistic filtered fraction.
func (g *generator) decoys() {
	decoy := &AS{ASN: 4294900000, Name: "decoy", Kind: KindEnterprise, index: len(g.w.ASes)}
	g.w.ASes = append(g.w.ASes, decoy)
	g.w.decoyAS = decoy
	n := int(g.cfg.DecoyFraction * float64(len(g.w.v4Universe)))
	for i := 0; i < n; i++ {
		a := decoy.AllocV4()
		g.w.v4Universe = append(g.w.v4Universe, a)
		g.w.AddrASN[a] = decoy.ASN
	}
}
