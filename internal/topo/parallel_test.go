package topo

import (
	"reflect"
	"testing"
)

// TestBuildParallelDeterministic asserts the plan/build/commit pipeline's
// central contract: worlds are byte-identical at every BuildWorkers setting.
// Two seeds, sequential (1 worker) versus heavily sharded (8 workers).
func TestBuildParallelDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		cfg := Default()
		cfg.Scale = 0.05
		cfg.Seed = seed

		seq := cfg
		seq.BuildWorkers = 1
		par := cfg
		par.BuildWorkers = 8

		a, err := Build(seq)
		if err != nil {
			t.Fatalf("seed %d sequential Build: %v", seed, err)
		}
		b, err := Build(par)
		if err != nil {
			t.Fatalf("seed %d parallel Build: %v", seed, err)
		}

		if !reflect.DeepEqual(a.V4Universe(), b.V4Universe()) {
			t.Errorf("seed %d: v4 universes differ (%d vs %d addrs)",
				seed, len(a.V4Universe()), len(b.V4Universe()))
		}
		if !reflect.DeepEqual(a.V6Bound(), b.V6Bound()) {
			t.Errorf("seed %d: v6 universes differ", seed)
		}
		if !reflect.DeepEqual(a.AddrASN, b.AddrASN) {
			t.Errorf("seed %d: AddrASN maps differ", seed)
		}
		if !reflect.DeepEqual(a.PTR, b.PTR) {
			t.Errorf("seed %d: PTR registries differ", seed)
		}
		if !reflect.DeepEqual(a.Truth.SSHAddrs, b.Truth.SSHAddrs) {
			t.Errorf("seed %d: SSH ground truth differs", seed)
		}
		if !reflect.DeepEqual(a.Truth.BGPAddrs, b.Truth.BGPAddrs) {
			t.Errorf("seed %d: BGP ground truth differs", seed)
		}
		if !reflect.DeepEqual(a.Truth.SNMPAddrs, b.Truth.SNMPAddrs) {
			t.Errorf("seed %d: SNMP ground truth differs", seed)
		}
		if !reflect.DeepEqual(a.Truth.Fleets, b.Truth.Fleets) {
			t.Errorf("seed %d: fleet ground truth differs", seed)
		}
		if a.Fabric.NumDevices() != b.Fabric.NumDevices() {
			t.Errorf("seed %d: device counts differ: %d vs %d",
				seed, a.Fabric.NumDevices(), b.Fabric.NumDevices())
		}
		// Churn must also replay identically: it walks the committed churn
		// records in order.
		if na, nb := a.ApplyChurn(0.10, 1), b.ApplyChurn(0.10, 1); na != nb {
			t.Errorf("seed %d: churn reassigned %d vs %d addresses", seed, na, nb)
		}
	}
}
