package topo

import (
	"crypto/ed25519"
	"net/netip"
	"runtime"
	"sync"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/xrand"
)

// World generation runs in three phases so the expensive per-device work can
// shard across CPU cores without changing a single byte of output:
//
//  1. Plan (sequential): every order-dependent decision — AS address
//     allocation, the fleet / overlap-personality / duplicate-router-ID
//     registries, ground-truth fleet bookkeeping — resolves in canonical
//     device order. All randomness is hash-keyed by stable labels, so the
//     draws themselves are order-free; only the allocators and registries
//     need the sequential pass.
//  2. Build (parallel): host-key generation and device/service construction
//     (the ed25519 and wire-protocol material that dominates Build's cost)
//     shard across Config.BuildWorkers workers. Every plan is independent:
//     shared personalities were already resolved to labels, and keys are
//     pure functions of (seed, label).
//  3. Commit (sequential): devices bind to the fabric in plan order, and the
//     ground-truth, PTR, and churn records are written exactly as the
//     sequential generator did.
//
// The output is byte-identical at every BuildWorkers setting — the same
// contract the collection pipeline established for ScanOptions.Parallelism.

// sshPersona is a resolved SSH identity: the fleet/overlap label recorded in
// ground truth, the label the host key derives from, and the software
// profile. Shared personalities (fleet keys, cloned management configs) are
// the same *sshPersona on every member.
type sshPersona struct {
	label    string
	keyLabel string
	profile  *sshwire.Profile
}

// sshPlan is a planned SSH service binding.
type sshPlan struct {
	persona *sshPersona
	// varied marks per-interface capability variation; variedAddr is the
	// interface announcing the reduced algorithm set.
	varied     bool
	variedAddr netip.Addr
	acl        []netip.Addr
}

// snmpPlan is a planned SNMPv3 agent binding.
type snmpPlan struct {
	cfg snmpv3.AgentConfig
	acl []netip.Addr
}

// bgpPlan is a planned BGP speaker binding.
type bgpPlan struct {
	cfg bgp.SpeakerConfig
}

// devicePlan carries one device from the planning pass to the build and
// commit passes.
type devicePlan struct {
	id   string
	kind netsim.DeviceKind
	as   *AS
	dcfg netsim.DeviceConfig

	brokenSSH bool
	ssh       *sshPlan
	snmp      *snmpPlan
	bgp       *bgpPlan
	// bgpTruth records whether the speaker is identifiable (sends OPEN) and
	// therefore belongs in the BGP ground truth.
	bgpTruth bool
	// churnable marks single-address dynamic servers eligible for
	// reassignment between measurement epochs.
	churnable bool

	// device is filled by the build phase.
	device *netsim.Device
}

// planDevice records a device plan in canonical order and returns it for
// service attachment. The full netsim.DeviceConfig is resolved here — all
// its draws are hash-keyed and cheap.
func (g *generator) planDevice(id string, kind netsim.DeviceKind, addrs []netip.Addr,
	addrASN map[netip.Addr]uint32, ipid ipidChoice, filtered []string, ownAS *AS) *devicePlan {
	// The AS map must be visible during planning: fleet labels are keyed by
	// the first address's ASN. Commit re-records the same values via bind.
	for _, a := range addrs {
		asn := ownAS.ASN
		if o, ok := addrASN[a]; ok {
			asn = o
		}
		g.w.AddrASN[a] = asn
	}
	p := &devicePlan{
		id:   id,
		kind: kind,
		as:   ownAS,
		dcfg: netsim.DeviceConfig{
			ID:           id,
			ASN:          ownAS.ASN,
			Kind:         kind,
			Addrs:        addrs,
			AddrASN:      addrASN,
			IPID:         ipid.model,
			IPIDVelocity: ipid.velocity,
			IPIDSeed:     xrand.Hash64(g.sk(id, "ipid-seed")...),
			Pingable:     ipid.pingable,
			// Most devices defeat the common-source-address technique: they
			// answer ICMP errors from the probed address or not at all — the
			// paper's motivation for moving to application-layer identifiers.
			RespondsFromProbed: g.prob(id, "icmp-same") < 0.80,
			ICMPSilent:         g.prob(id, "icmp-silent") < 0.45,
			// Few devices answer Speedtrap's fragment-eliciting probes at
			// all; routers somewhat more often than hosts.
			EmitsFragmentIDs: g.prob(id, "frag") < fragProb(kind),
			FilteredVantages: filtered,
		},
	}
	g.plans = append(g.plans, p)
	return p
}

// buildDevices runs the parallel phase: host keys for every unique key
// label, then device and service construction per plan.
func (g *generator) buildDevices() error {
	workers := g.cfg.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Unique key labels in first-use order; keys are pure functions of
	// (seed, label), so parallel generation is deterministic.
	seen := make(map[string]bool)
	var labels []string
	for _, p := range g.plans {
		if p.ssh != nil && !seen[p.ssh.persona.keyLabel] {
			seen[p.ssh.persona.keyLabel] = true
			labels = append(labels, p.ssh.persona.keyLabel)
		}
	}
	keys := make([]ed25519.PrivateKey, len(labels))
	runSharded(workers, len(labels), func(i int) error {
		keys[i] = g.hostKey(labels[i])
		return nil
	})
	keyOf := make(map[string]ed25519.PrivateKey, len(labels))
	for i, l := range labels {
		keyOf[l] = keys[i]
	}

	return runSharded(workers, len(g.plans), func(i int) error {
		return g.buildDevice(g.plans[i], keyOf)
	})
}

// buildDevice constructs one plan's device and its services. Device-local
// only: no fabric, registry, or map mutation.
func (g *generator) buildDevice(p *devicePlan, keys map[string]ed25519.PrivateKey) error {
	d, err := netsim.NewDevice(p.dcfg, g.w.Clock.Now())
	if err != nil {
		return err
	}
	// SNMP-dark worlds: the agent exists in the plan but was administratively
	// disabled. Clearing the plan here (hash-keyed, order-free draw) removes
	// both the service and — because commit reads p.snmp — the ground truth.
	if p.snmp != nil && g.cfg.PSNMPDisabled > 0 && g.prob(p.id, "snmp-dark") < g.cfg.PSNMPDisabled {
		p.snmp = nil
	}
	if p.brokenSSH {
		// Misbehaving daemon: speaks garbage on port 22. It stays out of the
		// ground truth — a scanner should learn nothing here.
		d.SetService(22, brokenSSHHandler{})
	}
	if p.ssh != nil {
		d.SetService(22, g.buildSSHServer(p.ssh, keys[p.ssh.persona.keyLabel]), p.ssh.acl...)
	}
	if p.snmp != nil {
		d.SetUDPService(snmpv3.Port, snmpv3.NewAgent(p.snmp.cfg).Handle, p.snmp.acl...)
	}
	if p.bgp != nil {
		d.SetService(179, bgp.NewSpeaker(p.bgp.cfg))
	}
	p.device = d
	return nil
}

// buildSSHServer realises a planned SSH service with its generated host key.
func (g *generator) buildSSHServer(sp *sshPlan, key ed25519.PrivateKey) *sshwire.Server {
	cfg := sshwire.ServerConfig{
		Banner:           sp.persona.profile.Banner,
		Algorithms:       sp.persona.profile.Algorithms,
		HostKey:          key,
		HandshakeTimeout: simHandshakeTimeout,
	}
	if sp.varied {
		varied := sp.persona.profile.Algorithms.Clone()
		if len(varied.MAC) > 2 {
			varied.MAC = varied.MAC[:len(varied.MAC)-2]
		} else {
			varied.Compression = []string{"none"}
		}
		special := sp.variedAddr
		base := sp.persona.profile.Algorithms
		cfg.AlgorithmsFor = func(a netip.Addr) sshwire.Algorithms {
			if a == special {
				return varied
			}
			return base
		}
	}
	return sshwire.NewServer(cfg)
}

// commit binds every built device in plan order and writes ground truth,
// PTR names, and churn records — the exact bookkeeping the sequential
// generator performed inline.
func (g *generator) commit() error {
	for _, p := range g.plans {
		d := p.device
		if err := g.w.bind(d, p.as); err != nil {
			return err
		}
		g.assignPTRNames(d, p.kind, p.as)
		if p.ssh != nil {
			g.w.Truth.SSHAddrs[d.ID()] = d.ServiceAddrs(22)
			g.w.registerTruthDevice(d.ID())
		}
		if p.snmp != nil {
			g.w.Truth.SNMPAddrs[d.ID()] = d.UDPServiceAddrs(snmpv3.Port)
			g.w.registerTruthDevice(d.ID())
		}
		if p.bgp != nil && p.bgpTruth {
			g.w.Truth.BGPAddrs[d.ID()] = d.ServiceAddrs(179)
			g.w.registerTruthDevice(d.ID())
			// Remembered so epoch-boundary reboots can re-key the speaker.
			g.w.bgpSpeakers[d.ID()] = p.bgp.cfg
		}
		if p.churnable {
			g.w.churnable = append(g.w.churnable, churnRecord{deviceID: p.id, addr: p.dcfg.Addrs[0]})
		}
	}
	return nil
}

// runSharded strides f(0..n-1) across workers goroutines and returns the
// first error.
func runSharded(workers, n int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := f(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}
