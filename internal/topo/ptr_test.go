package topo

import (
	"testing"

	"aliaslimit/internal/ptrdns"
)

func TestWorldPTRZone(t *testing.T) {
	cfg := Default()
	cfg.Scale = 0.05
	cfg.Seed = 31
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PTR) == 0 {
		t.Fatal("world has no PTR zone")
	}
	// Coverage must be partial: fewer names than addresses, and v6 coverage
	// thinner than v4.
	v4Named, v6Named := 0, 0
	for a := range w.PTR {
		if a.Is4() {
			v4Named++
		} else {
			v6Named++
		}
	}
	totalV4 := len(w.V4Universe())
	if v4Named == 0 || v4Named >= totalV4 {
		t.Errorf("v4 PTR coverage degenerate: %d of %d", v4Named, totalV4)
	}
	if v6Named == 0 {
		t.Error("no v6 PTR names")
	}

	// PTR-based dual-stack inference must work but find far fewer pairs
	// than the identifier technique would (coverage and generic names).
	ds := ptrdns.InferDualStack(w.PTR)
	if len(ds) == 0 {
		t.Fatal("PTR inference found nothing")
	}
	// Every PTR pair of non-CDN names must actually be one device.
	wrong := 0
	for _, s := range ds {
		devs := map[string]bool{}
		for _, a := range s.Addrs {
			if d := w.Fabric.Lookup(a); d != nil {
				devs[d.ID()] = true
			}
		}
		if len(devs) > 1 {
			wrong++
		}
	}
	// The shared-CDN names create a small number of false pairs; they must
	// stay a small minority.
	if frac := float64(wrong) / float64(len(ds)); frac > 0.15 {
		t.Errorf("%.0f%% of PTR pairs are false (%d of %d)", 100*frac, wrong, len(ds))
	}
}
