package topo

import (
	"fmt"
	"net/netip"
	"testing"

	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
)

func smallWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	cfg := Default()
	cfg.Seed = seed
	cfg.Scale = 0.05
	w, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w
}

func TestBuildValidation(t *testing.T) {
	cfg := Default()
	cfg.Scale = 0
	if _, err := Build(cfg); err == nil {
		t.Error("Scale 0: want error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := smallWorld(t, 7)
	b := smallWorld(t, 7)
	if len(a.V4Universe()) != len(b.V4Universe()) {
		t.Fatalf("universe sizes differ: %d vs %d", len(a.V4Universe()), len(b.V4Universe()))
	}
	for i := range a.V4Universe() {
		if a.V4Universe()[i] != b.V4Universe()[i] {
			t.Fatalf("universe diverges at %d", i)
		}
	}
	if a.Fabric.NumDevices() != b.Fabric.NumDevices() {
		t.Error("device counts differ")
	}
	// Different seed -> different world.
	c := smallWorld(t, 8)
	if len(a.V4Universe()) == len(c.V4Universe()) && a.Fabric.NumDevices() == c.Fabric.NumDevices() {
		// Counts may coincide; check a content difference.
		same := 0
		for i := 0; i < 100 && i < len(a.V4Universe()) && i < len(c.V4Universe()); i++ {
			if a.V4Universe()[i] == c.V4Universe()[i] {
				same++
			}
		}
		if same == 100 {
			t.Error("different seeds produced identical universes")
		}
	}
}

func TestUniverseSortedAndMapped(t *testing.T) {
	w := smallWorld(t, 1)
	u := w.V4Universe()
	if len(u) == 0 {
		t.Fatal("empty universe")
	}
	for i := 1; i < len(u); i++ {
		if !u[i-1].Less(u[i]) {
			t.Fatalf("universe not strictly sorted at %d (%s >= %s)", i, u[i-1], u[i])
		}
	}
	for _, a := range u[:100] {
		if _, ok := w.AddrASN[a]; !ok {
			t.Errorf("address %s missing from AddrASN", a)
		}
	}
	for i := 1; i < len(w.V6Bound()); i++ {
		if !w.V6Bound()[i-1].Less(w.V6Bound()[i]) {
			t.Fatal("v6 list not sorted")
		}
	}
}

func TestPopulationShape(t *testing.T) {
	w := smallWorld(t, 1)
	truth := w.Truth

	sshMulti, sshSingle := 0, 0
	for _, addrs := range truth.SSHAddrs {
		v4 := 0
		for _, a := range addrs {
			if a.Is4() {
				v4++
			}
		}
		if v4 >= 2 {
			sshMulti++
		} else if v4 == 1 {
			sshSingle++
		}
	}
	if sshSingle < 500 {
		t.Errorf("single SSH servers = %d, want hundreds at scale 0.05", sshSingle)
	}
	if sshMulti < 20 {
		t.Errorf("multi SSH hosts = %d, want ~46", sshMulti)
	}
	if sshMulti > sshSingle/5 {
		t.Errorf("multi/single ratio off: %d multi vs %d single", sshMulti, sshSingle)
	}

	bgpIdentifiable := len(truth.BGPAddrs)
	if bgpIdentifiable < 5 {
		t.Errorf("identifiable BGP devices = %d", bgpIdentifiable)
	}
	snmp := len(truth.SNMPAddrs)
	if snmp < 500 {
		t.Errorf("SNMP devices = %d", snmp)
	}
	if len(w.V6Bound()) == 0 {
		t.Error("no IPv6 addresses generated")
	}
}

func TestServicesActuallyAnswer(t *testing.T) {
	w := smallWorld(t, 1)
	v := w.Fabric.Vantage("test-vantage") // unfiltered label
	checked := 0
	for id, addrs := range w.Truth.SSHAddrs {
		if checked >= 5 || len(addrs) == 0 {
			break
		}
		if got := v.SynProbe(addrs[0], 22); got != netsim.StatusOpen {
			t.Errorf("device %s addr %s: SSH probe = %v", id, addrs[0], got)
		}
		checked++
	}
	checked = 0
	for id, addrs := range w.Truth.SNMPAddrs {
		if checked >= 5 || len(addrs) == 0 {
			break
		}
		if _, ok, err := snmpv3.Discover(v, addrs[0], 1, 1); !ok || err != nil {
			t.Errorf("device %s addr %s: SNMP discover ok=%v err=%v", id, addrs[0], ok, err)
		}
		checked++
	}
	checked = 0
	for id, addrs := range w.Truth.BGPAddrs {
		if checked >= 5 || len(addrs) == 0 {
			break
		}
		if got := v.SynProbe(addrs[0], 179); got != netsim.StatusOpen {
			t.Errorf("device %s addr %s: BGP probe = %v", id, addrs[0], got)
		}
		checked++
	}
}

func TestVantageCoverageDiffers(t *testing.T) {
	w := smallWorld(t, 1)
	active := w.Fabric.Vantage(VantageActive)
	censys := w.Fabric.Vantage(VantageCensys)
	activeOnly, censysOnly, both := 0, 0, 0
	for _, addrs := range w.Truth.SSHAddrs {
		for _, a := range addrs {
			if !a.Is4() {
				continue
			}
			aOpen := active.SynProbe(a, 22) == netsim.StatusOpen
			cOpen := censys.SynProbe(a, 22) == netsim.StatusOpen
			switch {
			case aOpen && cOpen:
				both++
			case aOpen:
				activeOnly++
			case cOpen:
				censysOnly++
			}
		}
	}
	if both == 0 || activeOnly == 0 || censysOnly == 0 {
		t.Fatalf("coverage split degenerate: both=%d activeOnly=%d censysOnly=%d",
			both, activeOnly, censysOnly)
	}
	// Censys must see noticeably more than the active vantage (the paper's
	// ~1.35x SSH gap): censysOnly outnumbers activeOnly.
	if censysOnly <= activeOnly {
		t.Errorf("censys-only (%d) should exceed active-only (%d)", censysOnly, activeOnly)
	}
}

func TestChurnReassignsAddresses(t *testing.T) {
	w := smallWorld(t, 3)
	before := w.Fabric.NumDevices()
	n := w.ApplyChurn(0.10, 1)
	if n == 0 {
		t.Fatal("churn reassigned nothing")
	}
	if w.Fabric.NumDevices() <= before {
		t.Error("churn should add replacement devices")
	}
	// Churned addresses still answer (new device), but ground truth moved.
	moved := 0
	for _, c := range w.churnable {
		d := w.Fabric.Lookup(c.addr)
		if d != nil && d.ID() != c.deviceID {
			moved++
		}
	}
	if moved != n {
		t.Errorf("moved=%d, ApplyChurn reported %d", moved, n)
	}
	// Second round with same inputs is deterministic and does not re-churn
	// the same addresses to conflicting devices.
	n2 := w.ApplyChurn(0.10, 1)
	if n2 != 0 {
		t.Errorf("re-applying identical churn round: %d new reassignments, want 0", n2)
	}
}

func TestFleetKeysShared(t *testing.T) {
	// At default probabilities small worlds may have zero fleets; force it.
	cfg := Default()
	cfg.Scale = 0.05
	cfg.PSharedSSHKey = 0.5
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, ids := range w.Truth.Fleets {
		if len(ids) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-device fleets at PSharedSSHKey=0.5")
	}
}

func TestASNOfAddrAgreesWithMap(t *testing.T) {
	w := smallWorld(t, 1)
	checked := 0
	for a, asn := range w.AddrASN {
		got, ok := ASNOfAddr(w.ASes, a)
		if !ok {
			t.Errorf("ASNOfAddr(%s) failed", a)
			continue
		}
		// Border-router interfaces carry an override ASN in the map that
		// prefix attribution cannot see — for those, the prefix owner and
		// the map legitimately agree anyway because the address was
		// allocated from the neighbour's space.
		if got != asn {
			t.Errorf("ASNOfAddr(%s) = %d, map says %d", a, got, asn)
		}
		checked++
		if checked > 500 {
			break
		}
	}
}

func TestASPlanHasAllKinds(t *testing.T) {
	w := smallWorld(t, 1)
	kinds := map[ASKind]int{}
	for _, a := range w.ASes {
		kinds[a.Kind]++
	}
	for _, k := range []ASKind{KindCloud, KindISP, KindEnterprise} {
		if kinds[k] == 0 {
			t.Errorf("no ASes of kind %v", k)
		}
	}
	if w.ASByNumber(14061) == nil {
		t.Error("DigitalOcean AS missing")
	}
	if w.ASByNumber(999999999) != nil {
		t.Error("phantom AS found")
	}
	if KindCloud.String() != "cloud" || KindISP.String() != "isp" ||
		KindEnterprise.String() != "enterprise" || ASKind(9).String() != "unknown" {
		t.Error("ASKind names wrong")
	}
}

func TestAllocatorsAreDisjoint(t *testing.T) {
	a1 := &AS{ASN: 1, index: 0}
	a2 := &AS{ASN: 2, index: 1}
	seen := map[netip.Addr]bool{}
	for i := 0; i < 1000; i++ {
		for _, a := range []netip.Addr{a1.AllocV4(), a2.AllocV4(), a1.AllocV6(), a2.AllocV6()} {
			if seen[a] {
				t.Fatalf("duplicate allocation %s", a)
			}
			seen[a] = true
		}
	}
}

func TestPickASWeighted(t *testing.T) {
	ases := buildASes(Default())
	counts := map[uint32]int{}
	for i := 0; i < 4000; i++ {
		a := pickAS(ases, KindCloud, "t", fmt.Sprint(i))
		if a.Kind != KindCloud {
			t.Fatalf("pickAS returned kind %v", a.Kind)
		}
		counts[a.ASN]++
	}
	// The heaviest cloud AS (DigitalOcean) must dominate the lightest.
	if counts[14061] <= counts[7506] {
		t.Errorf("weighting broken: AS14061=%d AS7506=%d", counts[14061], counts[7506])
	}
}
