package topo

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/ptrdns"
	"aliaslimit/internal/xrand"
)

// Vantage labels. Devices may filter one of them, reproducing the coverage
// differences between the paper's single research vantage point and Censys's
// distributed scanners.
const (
	// VantageActive is the single research vantage point in a German data
	// center (the paper's active measurement).
	VantageActive = "active"
	// VantageCensys is the distributed Censys infrastructure.
	VantageCensys = "censys"
	// VantageMIDAR is the IPID prober; devices do not filter it separately
	// (MIDAR ran from the same infrastructure).
	VantageMIDAR = "active"
)

// AuxVantages is the number of auxiliary geographic vantage points every
// world supports, for the paper's future-work question of how vantage
// location affects coverage (§5). Each device independently filters each
// auxiliary vantage with the same probability as the primary one.
const AuxVantages = 8

// AuxVantage returns the label of auxiliary vantage point i in [0,
// AuxVantages).
func AuxVantage(i int) string { return fmt.Sprintf("vp%d", i) }

// Origin is the simulated world's epoch: the Censys snapshot date the paper
// used (March 28, 2023). The active scan runs three simulated weeks later.
var Origin = time.Date(2023, 3, 28, 0, 0, 0, 0, time.UTC)

// Truth is the generator's ground truth, used by integration tests
// (precision/recall of the inference) and by experiment sanity checks. Maps
// are keyed by device ID and list the addresses on which the service
// actually answers (post-ACL).
type Truth struct {
	// SSHAddrs lists SSH-responsive addresses per device.
	SSHAddrs map[string][]netip.Addr
	// BGPAddrs lists identifiable (OPEN-sending) addresses per device.
	BGPAddrs map[string][]netip.Addr
	// SNMPAddrs lists SNMPv3-responsive addresses per device.
	SNMPAddrs map[string][]netip.Addr
	// Fleets maps a fleet-key label to the device IDs sharing that SSH
	// host key (the false-merge population).
	Fleets map[string][]string
}

// World is a generated synthetic Internet.
//
// Concurrency contract: after Build returns, the world is read-only safe —
// concurrent protocol sweeps (experiments.CollectActive runs SSH, BGP, and
// SNMPv3 at once) may probe the Fabric, dial services, read V4Universe /
// V6Bound / AddrASN / PTR / Truth, and read the Clock from any number of
// goroutines. The mutating methods — ApplyChurn, Clock.Advance/Set, and
// bind — are themselves data-race free but change measurement semantics, so
// the caller must order them strictly between scans, as BuildEnv does for
// the Censys → churn → active chronology.
type World struct {
	// Cfg is the configuration the world was built from.
	Cfg Config
	// Clock drives the fabric; experiments advance it.
	Clock *netsim.SimClock
	// Fabric is the simulated network.
	Fabric *netsim.Fabric
	// ASes is the AS plan.
	ASes []*AS
	// AddrASN maps every allocated address (bound or decoy) to its origin
	// AS — the mapping the AS-level analyses use.
	AddrASN map[netip.Addr]uint32
	// PTR is the reverse-DNS zone: partial, noisy, and full of generic
	// names, as real in-addr.arpa is. The ptrdns baseline reads it.
	PTR ptrdns.Registry
	// Truth is the ground truth.
	Truth *Truth

	v4Universe []netip.Addr
	v6Bound    []netip.Addr

	churnable []churnRecord
	darkWires []darkWire
	decoyAS   *AS

	// truthIndex is the grow-only device index behind sortedTruthDevices:
	// every device ID that ever entered a ground-truth map, in sorted order
	// once truthDirty is cleared. Truth-map entries are never deleted (churn
	// empties lists but keeps keys), so maintaining the index at registration
	// time replaces the per-churn-phase map-union-and-sort rebuild with a
	// lazy re-sort only after new devices appear.
	truthIndex []string
	truthSeen  map[string]struct{}
	truthDirty bool
	// truthScratch is the reusable dedup buffer behind truthAddrs.
	truthScratch []netip.Addr

	// bgpSpeakers remembers every identifiable speaker's OPEN personality so
	// an epoch-boundary reboot can re-key it — same AS, same addresses, same
	// peering behavior, fresh router ID and capability presentation —
	// without replanning the device.
	bgpSpeakers map[string]bgp.SpeakerConfig
}

// churnRecord remembers a single-address server that dynamic addressing may
// reassign between measurement epochs.
type churnRecord struct {
	deviceID string
	addr     netip.Addr
}

// V4Universe returns the IPv4 scan target list (bound addresses plus
// decoys), sorted. The returned slice is shared; do not modify.
func (w *World) V4Universe() []netip.Addr { return w.v4Universe }

// V6Bound returns every bound IPv6 address, sorted. Hitlists sample this.
func (w *World) V6Bound() []netip.Addr { return w.v6Bound }

// Build generates a world from cfg.
func Build(cfg Config) (*World, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("topo: Scale must be positive, got %v", cfg.Scale)
	}
	clock := netsim.NewSimClock(Origin)
	w := &World{
		Cfg:     cfg,
		Clock:   clock,
		Fabric:  netsim.New(clock),
		ASes:    buildASes(cfg),
		AddrASN: make(map[netip.Addr]uint32),
		PTR:     make(ptrdns.Registry),
		Truth: &Truth{
			SSHAddrs:  make(map[string][]netip.Addr),
			BGPAddrs:  make(map[string][]netip.Addr),
			SNMPAddrs: make(map[string][]netip.Addr),
			Fleets:    make(map[string][]string),
		},
		bgpSpeakers: make(map[string]bgp.SpeakerConfig),
	}
	g := &generator{w: w, cfg: cfg, fleets: make(map[string]*sshPersona)}
	if err := g.run(); err != nil {
		return nil, err
	}
	sort.Slice(w.v4Universe, func(i, j int) bool { return w.v4Universe[i].Less(w.v4Universe[j]) })
	sort.Slice(w.v6Bound, func(i, j int) bool { return w.v6Bound[i].Less(w.v6Bound[j]) })
	return w, nil
}

// bind registers a device on the fabric and records its addresses in the
// universes and the AS map.
func (w *World) bind(d *netsim.Device, deviceAS *AS) error {
	if err := w.Fabric.AddDevice(d); err != nil {
		return err
	}
	for _, a := range d.Addrs() {
		w.AddrASN[a] = d.AddrASN(a)
		if a.Is4() {
			w.v4Universe = append(w.v4Universe, a)
		} else {
			w.v6Bound = append(w.v6Bound, a)
		}
	}
	_ = deviceAS
	return nil
}

// ApplyChurn reassigns a fraction of dynamic single-server addresses to
// fresh devices with new SSH keys, as consumer and cloud address pools do
// over weeks. It returns the number of reassigned addresses. Deterministic
// per (seed, round).
func (w *World) ApplyChurn(frac float64, round int) int {
	n := 0
	for _, c := range w.churnable {
		// Historical key shape: (deviceID, "churn", round) — no seed prefix.
		// The streaming hasher reproduces it without the per-record
		// fmt.Sprint allocation.
		k := xrand.NewHasher()
		k.Key(c.deviceID)
		k.Key("churn")
		k.KeyInt(int64(round))
		if k.Prob() >= frac {
			continue
		}
		old := w.Fabric.Device(c.deviceID)
		if old == nil || w.Fabric.Lookup(c.addr) != old {
			continue // already churned in an earlier round
		}
		w.Fabric.Unbind(c.addr)
		g := &generator{w: w, cfg: w.Cfg, fleets: make(map[string]*sshPersona)}
		id := fmt.Sprintf("%s-churn%d", c.deviceID, round)
		if err := g.replacementServer(id, c.addr); err != nil {
			// Allocation cannot fail for a replacement (address reused);
			// if it somehow does, leave the address dark — also realistic.
			continue
		}
		// Ground truth: the old device no longer answers on this address.
		w.Truth.SSHAddrs[c.deviceID] = removeAddr(w.Truth.SSHAddrs[c.deviceID], c.addr)
		n++
	}
	return n
}

// registerTruthDevice enters a device ID into the churn enumeration index.
// Every site that creates a new ground-truth map key must call it; repeated
// registrations are free. Sorting is deferred to the next sortedTruthDevices
// call, so bulk registration during Build costs one sort total.
func (w *World) registerTruthDevice(id string) {
	if w.truthSeen == nil {
		w.truthSeen = make(map[string]struct{})
	}
	if _, ok := w.truthSeen[id]; ok {
		return
	}
	w.truthSeen[id] = struct{}{}
	w.truthIndex = append(w.truthIndex, id)
	w.truthDirty = true
}

// sortedTruthDevices returns the device IDs present in any ground-truth map,
// sorted — the canonical iteration order for churn candidate enumeration.
// The returned slice is the maintained index itself: valid until the next
// registration, not to be retained or mutated by callers. Devices registered
// while a caller is still ranging over a previous return value are appended
// past its length, so they join the next enumeration — exactly the snapshot
// semantics the old per-phase rebuild had.
func (w *World) sortedTruthDevices() []string {
	if w.truthDirty {
		sort.Strings(w.truthIndex)
		w.truthDirty = false
	}
	return w.truthIndex
}

// truthAddrs returns the device's distinct ground-truth addresses in
// first-appearance order across the SSH, BGP, SNMP lists. The result lives
// in a reusable scratch buffer: valid until the next call, never retained.
func (w *World) truthAddrs(id string) []netip.Addr {
	out := w.truthScratch[:0]
	for _, m := range [3]map[string][]netip.Addr{w.Truth.SSHAddrs, w.Truth.BGPAddrs, w.Truth.SNMPAddrs} {
		for _, a := range m[id] {
			// Alias sets are small; a linear dedup scan beats a fresh map.
			if !containsAddr(out, a) {
				out = append(out, a)
			}
		}
	}
	w.truthScratch = out
	return out
}

// removeAddr drops addr from list, preserving order.
func removeAddr(list []netip.Addr, addr netip.Addr) []netip.Addr {
	out := list[:0]
	for _, a := range list {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// ASByNumber returns the AS with the given ASN, or nil.
func (w *World) ASByNumber(asn uint32) *AS {
	for _, a := range w.ASes {
		if a.ASN == asn {
			return a
		}
	}
	return nil
}
