// Package xrand provides small deterministic randomness helpers shared by the
// topology generator and the network simulator.
//
// Reproducibility is a core requirement of this repository: every experiment
// must regenerate the same tables from the same seed. The standard library's
// math/rand/v2 is seedable, but many call sites here need *stateless*
// determinism — "given this device ID and this knob name, draw a stable
// pseudo-random value" — so that adding a new draw somewhere does not perturb
// every draw after it. xrand therefore offers both:
//
//   - a seedable stream RNG (SplitMix64) for ordered generation, and
//   - stateless keyed draws (Hash64, Prob, Intn) derived from FNV-1a over the
//     key strings, for per-entity decisions.
package xrand

import (
	"encoding/binary"
	"math"
	"net/netip"
)

// SplitMix64 is a tiny, fast, well-distributed PRNG. It is the generator
// recommended for seeding other PRNGs and is more than adequate for driving a
// synthetic topology. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent child generator from the current state and a
// label, without advancing the parent identically for different labels.
func (s *SplitMix64) Fork(label string) *SplitMix64 {
	return NewSplitMix64(s.Uint64() ^ Hash64(label))
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash64 returns a stable 64-bit FNV-1a hash of the concatenated keys, with a
// separator byte between keys so that ("ab","c") != ("a","bc").
func Hash64(keys ...string) uint64 {
	h := uint64(fnvOffset)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= fnvPrime
		}
		h ^= 0xff // separator
		h *= fnvPrime
	}
	// Final avalanche (from SplitMix64) so that short keys spread well.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Hash64Bytes is Hash64 over a single byte-slice key.
func Hash64Bytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Prob returns a stable pseudo-random value in [0, 1) keyed by keys.
// Typical use: xrand.Prob(deviceID, "filters-single-vantage") < 0.2.
func Prob(keys ...string) float64 {
	return float64(Hash64(keys...)>>11) / (1 << 53)
}

// Intn returns a stable pseudo-random value in [0, n) keyed by keys.
func Intn(n int, keys ...string) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(Hash64(keys...) % uint64(n))
}

// Bytes fills b with stable pseudo-random bytes keyed by keys. Successive
// 8-byte blocks are drawn from a SplitMix64 stream seeded with Hash64(keys).
func Bytes(b []byte, keys ...string) {
	s := NewSplitMix64(Hash64(keys...))
	var buf [8]byte
	for i := 0; i < len(b); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], s.Uint64())
		copy(b[i:], buf[:])
	}
}

// Exp returns a stable exponentially distributed value with the given mean,
// keyed by keys. Used for heavy-ish tailed size draws in the topology.
func Exp(mean float64, keys ...string) float64 {
	u := Prob(keys...)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Zipf returns a stable Zipf-like draw in [1, max] with exponent s > 1,
// keyed by keys, using inverse-CDF sampling of a truncated Pareto. The
// Internet's per-AS size distributions are famously heavy-tailed; this is the
// work-horse for AS sizes and alias-set sizes.
func Zipf(s float64, max int, keys ...string) int {
	if max < 1 {
		return 1
	}
	u := Prob(keys...)
	// Inverse CDF of P(X<=x) ∝ 1 - x^(1-s) on [1, max].
	hi := math.Pow(float64(max), 1-s)
	x := math.Pow(1-u*(1-hi), 1/(1-s))
	k := int(x)
	if k < 1 {
		k = 1
	}
	if k > max {
		k = max
	}
	return k
}

// Hasher is the allocation-free streaming form of the keyed draws: feed it
// the same keys you would pass to Hash64/Prob — one Key* call per key — and
// Sum64/Prob return bit-identical values, without materialising any of the
// key strings. The megascale churn and fault paths use it to keep their
// per-entity draws byte-identical to the historical fmt.Sprint-built keys
// while performing zero allocations (the alloc benchmarks enforce this).
//
// The value is plain data: copy it freely to fork a common prefix, e.g. hash
// the (seed, operation, epoch) prefix once and reuse it per entity.
type Hasher struct {
	h uint64
}

// NewHasher returns a hasher with no keys written.
func NewHasher() Hasher { return Hasher{h: fnvOffset} }

// sep closes one key, exactly as Hash64 separates adjacent keys.
func (k *Hasher) sep() {
	k.h ^= 0xff
	k.h *= fnvPrime
}

// Key feeds one string key, equivalent to one element of Hash64's key list.
func (k *Hasher) Key(s string) {
	h := k.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	k.h = h
	k.sep()
}

// KeyBytes feeds one key given as raw bytes.
func (k *Hasher) KeyBytes(b []byte) {
	h := k.h
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	k.h = h
	k.sep()
}

// KeyUint feeds one unsigned integer key as its decimal digits — the bytes
// fmt.Sprint(v) would produce — so call sites migrating from
// Prob(fmt.Sprint(v), ...) keep their historical draw values.
func (k *Hasher) KeyUint(v uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	k.KeyBytes(buf[i:])
}

// KeyInt feeds one signed integer key as its decimal digits.
func (k *Hasher) KeyInt(v int64) {
	if v < 0 {
		k.h ^= uint64('-')
		k.h *= fnvPrime
		// Continue into the digits of the magnitude without a separator:
		// the key is the whole "-123" string.
		var buf [20]byte
		i := len(buf)
		u := uint64(-v)
		for {
			i--
			buf[i] = byte('0' + u%10)
			u /= 10
			if u == 0 {
				break
			}
		}
		k.KeyBytes(buf[i:])
		return
	}
	k.KeyUint(uint64(v))
}

// KeyAddr feeds one address key as its canonical text form — the bytes
// addr.String() would produce — staying allocation-free via a stack buffer.
func (k *Hasher) KeyAddr(a netip.Addr) {
	var buf [48]byte
	k.KeyBytes(a.AppendTo(buf[:0]))
}

// Sum64 finalises the hash with Hash64's avalanche. The hasher may keep
// accepting keys afterwards; Sum64 does not mutate it.
func (k Hasher) Sum64() uint64 {
	h := (k.h ^ (k.h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Prob returns the stable pseudo-random value in [0, 1) for the keys fed so
// far — bit-identical to Prob over the same key strings.
func (k Hasher) Prob() float64 {
	return float64(k.Sum64()>>11) / (1 << 53)
}
