package xrand

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(123)
	b := NewSplitMix64(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := NewSplitMix64(124)
	same := 0
	a = NewSplitMix64(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitMix64Ranges(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := s.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %v", v)
		}
	}
}

func TestSplitMix64IntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestStatelessIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0, key) did not panic")
		}
	}()
	Intn(0, "k")
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(99)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewSplitMix64(5).Fork("x")
	b := NewSplitMix64(5).Fork("y")
	if a.Uint64() == b.Uint64() {
		t.Error("forks with different labels produced identical first values")
	}
}

func TestHash64SeparatorMatters(t *testing.T) {
	if Hash64("ab", "c") == Hash64("a", "bc") {
		t.Error(`Hash64("ab","c") == Hash64("a","bc")`)
	}
	if Hash64("x") != Hash64("x") {
		t.Error("Hash64 not deterministic")
	}
	if Hash64Bytes([]byte("abc")) == Hash64Bytes([]byte("abd")) {
		t.Error("Hash64Bytes collision on near-identical input (suspicious)")
	}
}

func TestProbRange(t *testing.T) {
	err := quick.Check(func(k string) bool {
		p := Prob(k)
		return p >= 0 && p < 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(k string) bool {
		v := Intn(17, k)
		return v >= 0 && v < 17
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBytesDeterministicAndFull(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	Bytes(a, "seed", "1")
	Bytes(b, "seed", "1")
	if string(a) != string(b) {
		t.Error("Bytes not deterministic")
	}
	Bytes(b, "seed", "2")
	if string(a) == string(b) {
		t.Error("Bytes identical for different keys")
	}
	zero := 0
	for _, c := range a {
		if c == 0 {
			zero++
		}
	}
	if zero == len(a) {
		t.Error("Bytes produced all zeros")
	}
}

func TestExpMeanApproximate(t *testing.T) {
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += Exp(10, "exp-test", string(rune(i)), string(rune(i/128)))
	}
	mean := sum / n
	if mean < 8 || mean > 12 {
		t.Errorf("Exp(10) sample mean = %.2f, want ~10", mean)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	const max = 1000
	counts := map[int]int{}
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		v := Zipf(1.5, max, "zipf", string(rune(i)), string(rune(i/500)))
		if v < 1 || v > max {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
		counts[v]++
		if v <= 3 {
			small++
		}
	}
	// A Zipf(1.5) draw should be heavily concentrated on small values.
	if float64(small)/n < 0.5 {
		t.Errorf("Zipf not skewed: only %.1f%% of draws <= 3", 100*float64(small)/n)
	}
	if Zipf(1.5, 0, "k") != 1 {
		t.Error("Zipf with max<1 should clamp to 1")
	}
}

// TestHasherMatchesProb is the byte-identity gate for the streaming hasher:
// every Key* method must reproduce exactly the draw Prob/Hash64 produce over
// the equivalent key strings, because the generated worlds (and every
// documented precision/recall number) depend on those bits.
func TestHasherMatchesProb(t *testing.T) {
	seeds := []uint64{0, 1, 42, 18446744073709551615}
	ops := []string{"wire-down", "wire-up", "epoch-renum", "reboot", "churn"}
	ids := []string{"", "core-0001", "edge-12", "r"}
	addrs := []netip.Addr{
		netip.MustParseAddr("203.0.113.7"),
		netip.MustParseAddr("198.18.0.255"),
		netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("2001:db8:0:7::c0ff:ee"),
		netip.MustParseAddr("::"),
	}
	for _, seed := range seeds {
		for ek := 0; ek < 3; ek++ {
			for _, op := range ops {
				for _, id := range ids {
					for _, a := range addrs {
						want := Prob(fmt.Sprint(seed), op, fmt.Sprint(ek), id, a.String())
						k := NewHasher()
						k.KeyUint(seed)
						k.Key(op)
						k.KeyInt(int64(ek))
						k.Key(id)
						k.KeyAddr(a)
						if got := k.Prob(); got != want {
							t.Fatalf("Hasher.Prob mismatch for (%d,%s,%d,%s,%s): got %v want %v",
								seed, op, ek, id, a, got, want)
						}
						if k.Sum64() != Hash64(fmt.Sprint(seed), op, fmt.Sprint(ek), id, a.String()) {
							t.Fatalf("Hasher.Sum64 mismatch for (%d,%s,%d,%s,%s)", seed, op, ek, id, a)
						}
					}
				}
			}
		}
	}
}

// TestHasherNegativeInt pins KeyInt's fmt.Sprint-compatible handling of
// negative values (the sign is part of the same key, not a separate one).
func TestHasherNegativeInt(t *testing.T) {
	for _, v := range []int64{-1, -42, -9223372036854775808} {
		k := NewHasher()
		k.KeyInt(v)
		if got, want := k.Prob(), Prob(fmt.Sprint(v)); got != want {
			t.Fatalf("KeyInt(%d): got %v want %v", v, got, want)
		}
	}
}

// TestHasherKeyBytesMatchesKey pins that string and byte forms agree.
func TestHasherKeyBytesMatchesKey(t *testing.T) {
	a := NewHasher()
	a.Key("abc")
	a.Key("")
	b := NewHasher()
	b.KeyBytes([]byte("abc"))
	b.KeyBytes(nil)
	if a.Sum64() != b.Sum64() {
		t.Fatal("Key and KeyBytes disagree")
	}
}

// TestHasherPrefixFork pins the copy-to-fork contract the churn paths rely
// on: hashing a common (seed, op, epoch) prefix once and copying the hasher
// per entity must equal hashing every key from scratch.
func TestHasherPrefixFork(t *testing.T) {
	prefix := NewHasher()
	prefix.KeyUint(7)
	prefix.Key("wire-down")
	prefix.KeyInt(2)
	for _, id := range []string{"dev-a", "dev-b"} {
		k := prefix // copy forks the prefix
		k.Key(id)
		if got, want := k.Prob(), Prob("7", "wire-down", "2", id); got != want {
			t.Fatalf("forked hasher for %s: got %v want %v", id, got, want)
		}
	}
}

// TestHasherZeroAlloc enforces the whole point: a full keyed draw — integer,
// string, and address keys included — performs zero heap allocations.
func TestHasherZeroAlloc(t *testing.T) {
	a := netip.MustParseAddr("2001:db8::42")
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		k := NewHasher()
		k.KeyUint(99)
		k.Key("wire-down")
		k.KeyInt(3)
		k.Key("device-0042")
		k.KeyAddr(a)
		sink = k.Prob()
	})
	if allocs != 0 {
		t.Fatalf("keyed draw allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// BenchmarkHasherDraw prices one full churn-style keyed draw.
func BenchmarkHasherDraw(b *testing.B) {
	a := netip.MustParseAddr("203.0.113.9")
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		k := NewHasher()
		k.KeyUint(1)
		k.Key("wire-down")
		k.KeyInt(0)
		k.Key("device-0001")
		k.KeyAddr(a)
		sink = k.Prob()
	}
	_ = sink
}

// BenchmarkProbSprintDraw prices the retired fmt.Sprint-built equivalent.
func BenchmarkProbSprintDraw(b *testing.B) {
	a := netip.MustParseAddr("203.0.113.9")
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Prob(fmt.Sprint(uint64(1)), "wire-down", fmt.Sprint(0), "device-0001", a.String())
	}
	_ = sink
}
