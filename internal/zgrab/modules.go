package zgrab

import (
	"io"
	"net"
	"net/netip"
	"time"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/sshwire"
)

// SSHModule runs the sshwire client scan: banner, KEXINIT, one key exchange.
type SSHModule struct {
	// Timeout bounds the whole SSH exchange; zero picks sshwire's default.
	Timeout time.Duration
	// Rand supplies scan-side entropy; nil means crypto/rand. Simulated
	// experiments inject deterministic streams.
	Rand io.Reader
}

// Name implements Module.
func (m *SSHModule) Name() string { return "ssh" }

// DefaultPort implements Module: TCP/22, the only SSH port the paper's
// methodology considers (Censys's 60k non-standard-port findings are
// deliberately excluded).
func (m *SSHModule) DefaultPort() uint16 { return 22 }

// Scan implements Module.
func (m *SSHModule) Scan(conn net.Conn, target netip.Addr) (any, error) {
	res, err := sshwire.Scan(conn, sshwire.ScanConfig{Timeout: m.Timeout, Rand: m.Rand})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// BGPModule runs the passive BGP collection: complete the handshake, send
// nothing, record the unsolicited OPEN/NOTIFICATION.
type BGPModule struct {
	// Timeout is the wait-for-data window; zero picks the paper's 2s.
	Timeout time.Duration
}

// Name implements Module.
func (m *BGPModule) Name() string { return "bgp" }

// DefaultPort implements Module.
func (m *BGPModule) DefaultPort() uint16 { return 179 }

// Scan implements Module.
func (m *BGPModule) Scan(conn net.Conn, target netip.Addr) (any, error) {
	res, err := bgp.Scan(conn, m.Timeout)
	if err != nil {
		return nil, err
	}
	return res, nil
}
