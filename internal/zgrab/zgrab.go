// Package zgrab is a miniature ZGrab2: the phase-2 application-layer service
// scanner. It takes the address list a zmaplite sweep found responsive,
// dials each target, and hands the connection to a protocol module that
// completes the TCP handshake's application-layer follow-up — an SSH banner
// and key exchange, or a passive BGP OPEN collection.
//
// The framework mirrors ZGrab2's architecture: protocol logic lives in
// pluggable modules, the framework owns dialing, timeouts, concurrency, and
// structured result records.
package zgrab

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Dialer is satisfied by *net.Dialer and *netsim.Vantage alike; the scanner
// does not know whether its targets are real.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Module implements one protocol scan.
type Module interface {
	// Name identifies the module ("ssh", "bgp").
	Name() string
	// DefaultPort is the port the module scans unless overridden.
	DefaultPort() uint16
	// Scan speaks the protocol on an established connection. It must close
	// conn and should return a protocol-specific result value.
	Scan(conn net.Conn, target netip.Addr) (any, error)
}

// Grab is one structured scan record, ZGrab2's output unit.
type Grab struct {
	// Target is the scanned address.
	Target netip.Addr
	// Port is the scanned TCP port.
	Port uint16
	// Module is the protocol module name.
	Module string
	// Data is the module's result on success (module-specific type).
	Data any
	// Err records dial or protocol failure.
	Err error
}

// OK reports whether the grab produced usable protocol data.
func (g *Grab) OK() bool { return g.Err == nil && g.Data != nil }

// Options parameterises a run.
type Options struct {
	// Port overrides the module's default port when non-zero.
	Port uint16
	// Workers bounds concurrency; 0 picks 128.
	Workers int
	// DialTimeout bounds each dial; 0 picks 3s.
	DialTimeout time.Duration
}

// Run scans every target with the module and returns one Grab per target, in
// target order (sorted by address) for reproducible downstream processing. It
// is the batch form of RunStream.
func Run(d Dialer, targets []netip.Addr, m Module, opts Options) []Grab {
	ch := make(chan netip.Addr, len(targets))
	for _, t := range targets {
		ch <- t
	}
	close(ch)
	return RunStream(d, ch, m, opts)
}

// RunStream scans targets as they arrive on the channel, so a phase-1 sweep
// (zmaplite.ScanStream) can feed responsive addresses into banner grabs while
// the sweep is still in flight. It returns once targets is closed and every
// grab has completed. Each worker accumulates grabs in a private shard; the
// shards merge and sort by target address at the end, so the returned slice
// is byte-identical to Run over the same target set regardless of arrival
// order or worker count.
func RunStream(d Dialer, targets <-chan netip.Addr, m Module, opts Options) []Grab {
	return RunStreamEmit(d, targets, m, opts, nil)
}

// RunStreamEmit is RunStream with a completion tap: emit (when non-nil) is
// invoked for every grab the moment it completes, from the worker goroutine
// that performed it — while later grabs and the phase-1 sweep are still in
// flight. With multiple workers the calls are concurrent and carry no
// ordering guarantee, so emit must be safe for concurrent use and
// order-insensitive; the returned slice is unchanged by the tap. It is how
// a streaming resolver backend consumes observations online instead of
// waiting for the sorted batch.
func RunStreamEmit(d Dialer, targets <-chan netip.Addr, m Module, opts Options, emit func(Grab)) []Grab {
	return runStream(d, targets, m, opts, emit, true)
}

// RunStreamDiscard is RunStreamEmit without the accumulated result slice:
// every grab is delivered to emit and then dropped, so resident memory is
// O(workers) regardless of target count. It is the scan front of the
// out-of-core collection path, where the tap writes observations to the
// durable log and nothing downstream wants the sorted batch.
func RunStreamDiscard(d Dialer, targets <-chan netip.Addr, m Module, opts Options, emit func(Grab)) {
	runStream(d, targets, m, opts, emit, false)
}

// runStream is the shared worker pool behind the stream entry points; keep
// selects whether per-worker shards accumulate grabs for the sorted merge.
func runStream(d Dialer, targets <-chan netip.Addr, m Module, opts Options, emit func(Grab), keep bool) []Grab {
	port := opts.Port
	if port == 0 {
		port = m.DefaultPort()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 128
	}
	dialTimeout := opts.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 3 * time.Second
	}

	shards := make([][]Grab, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard *[]Grab) {
			defer wg.Done()
			for t := range targets {
				g := scanOne(d, t, port, m, dialTimeout)
				if emit != nil {
					emit(g)
				}
				if keep {
					*shard = append(*shard, g)
				}
			}
		}(&shards[w])
	}
	wg.Wait()
	if !keep {
		return nil
	}

	var grabs []Grab
	for _, s := range shards {
		grabs = append(grabs, s...)
	}
	sort.Slice(grabs, func(i, j int) bool { return grabs[i].Target.Less(grabs[j].Target) })
	return grabs
}

// scanOne dials and runs the module against a single target.
func scanOne(d Dialer, target netip.Addr, port uint16, m Module, dialTimeout time.Duration) Grab {
	g := Grab{Target: target, Port: port, Module: m.Name()}
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	conn, err := d.DialContext(ctx, "tcp", netip.AddrPortFrom(target, port).String())
	if err != nil {
		g.Err = fmt.Errorf("zgrab: dial %s:%d: %w", target, port, err)
		return g
	}
	data, err := m.Scan(conn, target)
	if err != nil {
		g.Err = fmt.Errorf("zgrab: %s scan of %s: %w", m.Name(), target, err)
		return g
	}
	g.Data = data
	return g
}

// Successes filters grabs down to those with usable data.
func Successes(grabs []Grab) []Grab {
	out := make([]Grab, 0, len(grabs))
	for _, g := range grabs {
		if g.OK() {
			out = append(out, g)
		}
	}
	return out
}
