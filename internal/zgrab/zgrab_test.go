package zgrab

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/xrand"
)

type detRand struct{ s *xrand.SplitMix64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.s.Uint64())
	}
	return len(p), nil
}

// fixture builds a fabric with SSH and BGP devices.
func fixture(t *testing.T) (*netsim.Fabric, []netip.Addr, []netip.Addr) {
	t.Helper()
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	var sshAddrs, bgpAddrs []netip.Addr

	for i := 0; i < 5; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		sshAddrs = append(sshAddrs, a)
		_, priv, err := sshwire.GenerateEd25519(&detRand{s: xrand.NewSplitMix64(uint64(i))})
		if err != nil {
			t.Fatal(err)
		}
		p := sshwire.Profiles[i%len(sshwire.Profiles)]
		d, err := netsim.NewDevice(netsim.DeviceConfig{ID: a.String(), Addrs: []netip.Addr{a}}, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		d.SetService(22, sshwire.NewServer(sshwire.ServerConfig{
			Banner: p.Banner, Algorithms: p.Algorithms, HostKey: priv,
		}))
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)})
		bgpAddrs = append(bgpAddrs, a)
		d, err := netsim.NewDevice(netsim.DeviceConfig{ID: a.String(), Addrs: []netip.Addr{a}}, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		behavior := bgp.BehaviorOpenNotify
		if i == 2 {
			behavior = bgp.BehaviorSilentClose
		}
		d.SetService(179, bgp.NewSpeaker(bgp.SpeakerConfig{
			ASN: 65000 + uint32(i), RouterID: uint32(i + 1), HoldTime: 90, Behavior: behavior,
		}))
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	return f, sshAddrs, bgpAddrs
}

func TestRunSSHModule(t *testing.T) {
	f, sshAddrs, _ := fixture(t)
	grabs := Run(f.Vantage("t"), sshAddrs, &SSHModule{Timeout: 2 * time.Second}, Options{Workers: 4})
	if len(grabs) != len(sshAddrs) {
		t.Fatalf("grabs = %d", len(grabs))
	}
	ok := Successes(grabs)
	if len(ok) != len(sshAddrs) {
		t.Fatalf("successes = %d, want %d", len(ok), len(sshAddrs))
	}
	for _, g := range ok {
		res, isSSH := g.Data.(*sshwire.ScanResult)
		if !isSSH || !res.HasIdentifierMaterial() {
			t.Errorf("grab %s lacks identifier material", g.Target)
		}
		if g.Module != "ssh" || g.Port != 22 {
			t.Errorf("grab metadata wrong: %+v", g)
		}
	}
	// Output sorted by target.
	for i := 1; i < len(grabs); i++ {
		if !grabs[i-1].Target.Less(grabs[i].Target) {
			t.Fatal("grabs not sorted")
		}
	}
}

func TestRunBGPModule(t *testing.T) {
	f, _, bgpAddrs := fixture(t)
	grabs := Run(f.Vantage("t"), bgpAddrs, &BGPModule{Timeout: 500 * time.Millisecond}, Options{Workers: 2})
	identifiable := 0
	for _, g := range grabs {
		if !g.OK() {
			t.Errorf("grab %s failed: %v", g.Target, g.Err)
			continue
		}
		res := g.Data.(*bgp.ScanResult)
		if res.Identifiable() {
			identifiable++
		}
	}
	if identifiable != 2 {
		t.Errorf("identifiable = %d, want 2 (one speaker is silent)", identifiable)
	}
}

func TestRunRecordsDialFailures(t *testing.T) {
	f, _, _ := fixture(t)
	targets := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),  // open
		netip.MustParseAddr("10.0.0.99"), // unrouted -> timeout error
	}
	grabs := Run(f.Vantage("t"), targets, &SSHModule{Timeout: time.Second}, Options{Workers: 2})
	if len(grabs) != 2 {
		t.Fatal("want 2 grabs")
	}
	var okCount, errCount int
	for _, g := range grabs {
		if g.OK() {
			okCount++
		} else if g.Err != nil {
			errCount++
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Errorf("ok=%d err=%d, want 1/1", okCount, errCount)
	}
}

func TestRunPortOverride(t *testing.T) {
	f, _, _ := fixture(t)
	grabs := Run(f.Vantage("t"), []netip.Addr{netip.MustParseAddr("10.0.0.1")},
		&SSHModule{Timeout: time.Second}, Options{Workers: 1, Port: 2222})
	if grabs[0].Port != 2222 {
		t.Errorf("port = %d", grabs[0].Port)
	}
	if grabs[0].OK() {
		t.Error("scan on closed port 2222 should fail")
	}
}

func TestRunEmptyTargets(t *testing.T) {
	f, _, _ := fixture(t)
	if got := Run(f.Vantage("t"), nil, &SSHModule{}, Options{}); len(got) != 0 {
		t.Errorf("grabs = %v", got)
	}
}

func TestModuleMetadata(t *testing.T) {
	var ssh SSHModule
	var bgpm BGPModule
	if ssh.Name() != "ssh" || ssh.DefaultPort() != 22 {
		t.Error("ssh module metadata")
	}
	if bgpm.Name() != "bgp" || bgpm.DefaultPort() != 179 {
		t.Error("bgp module metadata")
	}
}

// slowModule blocks to exercise concurrency limits.
type slowModule struct{ hold time.Duration }

func (m *slowModule) Name() string        { return "slow" }
func (m *slowModule) DefaultPort() uint16 { return 22 }
func (m *slowModule) Scan(conn net.Conn, _ netip.Addr) (any, error) {
	defer conn.Close()
	time.Sleep(m.hold)
	return "done", nil
}

func TestRunParallelism(t *testing.T) {
	f, sshAddrs, _ := fixture(t)
	start := time.Now()
	grabs := Run(f.Vantage("t"), sshAddrs, &slowModule{hold: 100 * time.Millisecond}, Options{Workers: 5})
	elapsed := time.Since(start)
	if len(Successes(grabs)) != len(sshAddrs) {
		t.Fatal("slow module failed")
	}
	// Five 100ms scans across five workers should take ~100ms, not 500ms.
	if elapsed > 350*time.Millisecond {
		t.Errorf("parallel run took %v", elapsed)
	}
}
