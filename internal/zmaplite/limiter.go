package zmaplite

import (
	"sync"
	"time"

	"aliaslimit/internal/netsim"
)

// Limiter is a token-bucket packet-rate limiter. It cooperates with the
// simulation clock: when the underlying clock is a *netsim.SimClock, waiting
// for tokens advances simulated time instead of sleeping, so a rate-limited
// scan of N targets "takes" N/rate simulated seconds — which is how the
// experiments account for multi-day measurement campaigns without multi-day
// test runs.
type Limiter struct {
	mu     sync.Mutex
	clock  netsim.Clock
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter producing rate tokens/second with the given
// burst. rate <= 0 disables limiting entirely.
func NewLimiter(clock netsim.Clock, rate float64, burst int) *Limiter {
	if clock == nil {
		clock = netsim.RealClock{}
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		clock:  clock,
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   clock.Now(),
	}
}

// Acquire blocks (or advances simulated time) until one token is available,
// then consumes it.
func (l *Limiter) Acquire() {
	if l.rate <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock.Now()
	l.refill(now)
	if l.tokens >= 1 {
		l.tokens--
		return
	}
	need := (1 - l.tokens) / l.rate
	wait := time.Duration(need * float64(time.Second))
	if sc, ok := l.clock.(*netsim.SimClock); ok {
		sc.Advance(wait)
	} else {
		time.Sleep(wait)
	}
	l.refill(l.clock.Now())
	if l.tokens >= 1 {
		l.tokens--
	} else {
		// Clock did not advance (e.g. a frozen test clock); fail open
		// rather than deadlock the scan.
		l.tokens = 0
	}
}

// refill adds tokens for the elapsed time. Callers hold l.mu.
func (l *Limiter) refill(now time.Time) {
	if now.After(l.last) {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
}
