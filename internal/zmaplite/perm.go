// Package zmaplite is a miniature ZMap: a stateless TCP SYN scanner that
// sweeps a target population in pseudo-random order under a configurable
// packet rate. The paper's phase-1 scan ("an Internet-wide TCP scan sending a
// single SYN packet on port 22 and 179 using ZMap") maps onto this package;
// phase 2 (the application-layer service scan) lives in package zgrab.
//
// Random probe order is not cosmetic: ZMap randomises the address space so
// that no destination network sees a burst of probes, which is both an
// ethical-scanning requirement and the reason per-prefix rate limiters do not
// fire. zmaplite reproduces the same invariant with a full-cycle permutation
// of the target index space.
package zmaplite

import (
	"fmt"

	"aliaslimit/internal/xrand"
)

// Permutation enumerates 0..N-1 in a pseudo-random order, visiting every
// index exactly once. It is built from an affine full-period generator
// x' = (a·x + c) mod m (Hull–Dobell theorem: m a power of two, c odd,
// a ≡ 1 mod 4) over the next power of two ≥ N, with out-of-range values
// skipped — the classic cycle-walking construction ZMap's cyclic-group
// iteration also relies on.
type Permutation struct {
	n, m  uint64
	a, c  uint64
	state uint64
	done  uint64
}

// NewPermutation builds a permutation of [0, n) seeded by seed. n must be
// positive.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("zmaplite: empty target space")
	}
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	rng := xrand.NewSplitMix64(seed)
	// Hull–Dobell: with m a power of two, any a ≡ 1 (mod 4) and odd c give
	// a full-period generator. Masking with m-1 keeps a, c in range; the
	// masks below preserve the congruence conditions for every m ≥ 1.
	a := (rng.Uint64()&(m-1))&^3 | 1
	c := rng.Uint64()&(m-1) | 1
	return &Permutation{
		n: n, m: m, a: a, c: c,
		state: rng.Uint64() & (m - 1),
	}, nil
}

// Next returns the next index and false when the cycle is exhausted.
func (p *Permutation) Next() (uint64, bool) {
	for p.done < p.m {
		v := p.state
		p.state = (p.a*p.state + p.c) & (p.m - 1)
		p.done++
		if v < p.n {
			return v, true
		}
	}
	return 0, false
}

// Len returns the size of the permuted space.
func (p *Permutation) Len() uint64 { return p.n }
