package zmaplite

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"aliaslimit/internal/netsim"
)

// Prober is the transport a SYN scan needs. netsim.Vantage implements it; a
// raw-socket prober would on a real network. Implementations must be safe for
// concurrent use: a sweep probes from many goroutines at once.
type Prober interface {
	SynProbe(addr netip.Addr, port uint16) netsim.ProbeStatus
}

// Config parameterises one sweep.
type Config struct {
	// Targets is the address population to probe.
	Targets []netip.Addr
	// Port is the TCP port to probe (one port per sweep, as ZMap runs).
	Port uint16
	// Rate is the probe rate in packets/second; 0 means unlimited.
	Rate float64
	// Seed drives the scan-order permutation.
	Seed uint64
	// Workers is the number of concurrent probe workers; 0 picks 64.
	Workers int
	// Clock is used for rate limiting; nil means the real clock.
	Clock netsim.Clock
}

// Result is the outcome of one sweep.
type Result struct {
	// Port is the probed TCP port.
	Port uint16
	// Open lists the addresses that answered SYN-ACK, sorted.
	Open []netip.Addr
	// Closed counts RST answers; Filtered counts silent drops.
	Closed, Filtered int
}

// Total returns the number of probes sent.
func (r *Result) Total() int { return len(r.Open) + r.Closed + r.Filtered }

// shard is one worker's private tally. Workers never share result state, so
// the per-probe hot path takes no locks; shards merge deterministically after
// the sweep.
type shard struct {
	open             []netip.Addr
	closed, filtered int
}

// Scan sweeps cfg.Targets on cfg.Port in permuted order and classifies every
// answer. It is the phase-1 liveness scan: its Open list becomes the phase-2
// service-scan target list. Scan is the barrier form of ScanStream: it
// returns only once the whole sweep has finished.
func Scan(p Prober, cfg Config) (*Result, error) {
	open, done, err := ScanStream(p, cfg)
	if err != nil {
		return nil, err
	}
	for range open {
		// Drain: the final Result carries the sorted Open list.
	}
	return <-done, nil
}

// ScanStream starts the sweep and returns immediately. Every address that
// answers SYN-ACK is emitted on open as soon as its answer arrives, so a
// phase-2 service scanner can begin grabbing banners while the sweep is still
// in flight. open is closed when the last probe has been answered; the final
// Result — with the Open list sorted and the counters totalled, byte-identical
// to Scan's — is then delivered on done.
//
// The caller must drain open (directly or through zgrab.RunStream); the sweep
// blocks once the channel's buffer fills.
func ScanStream(p Prober, cfg Config) (open <-chan netip.Addr, done <-chan *Result, err error) {
	openCh := make(chan netip.Addr, 256)
	doneCh := make(chan *Result, 1)
	if len(cfg.Targets) == 0 {
		close(openCh)
		doneCh <- &Result{Port: cfg.Port}
		close(doneCh)
		return openCh, doneCh, nil
	}
	if cfg.Port == 0 {
		return nil, nil, fmt.Errorf("zmaplite: port must be set")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	perm, err := NewPermutation(uint64(len(cfg.Targets)), cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	limiter := NewLimiter(cfg.Clock, cfg.Rate, 64)

	// The permutation is inherently sequential; a single feeder goroutine
	// walks it and workers consume indices.
	idxCh := make(chan uint64, workers*2)
	go func() {
		defer close(idxCh)
		for {
			i, ok := perm.Next()
			if !ok {
				return
			}
			idxCh <- i
		}
	}()

	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			for i := range idxCh {
				limiter.Acquire()
				addr := cfg.Targets[i]
				switch p.SynProbe(addr, cfg.Port) {
				case netsim.StatusOpen:
					s.open = append(s.open, addr)
					openCh <- addr
				case netsim.StatusClosed:
					s.closed++
				default:
					s.filtered++
				}
			}
		}(&shards[w])
	}
	go func() {
		wg.Wait()
		close(openCh)
		res := &Result{Port: cfg.Port}
		for _, s := range shards {
			res.Open = append(res.Open, s.open...)
			res.Closed += s.closed
			res.Filtered += s.filtered
		}
		sort.Slice(res.Open, func(i, j int) bool { return res.Open[i].Less(res.Open[j]) })
		doneCh <- res
		close(doneCh)
	}()
	return openCh, doneCh, nil
}
