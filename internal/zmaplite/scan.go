package zmaplite

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"aliaslimit/internal/netsim"
)

// Prober is the transport a SYN scan needs. netsim.Vantage implements it; a
// raw-socket prober would on a real network.
type Prober interface {
	SynProbe(addr netip.Addr, port uint16) netsim.ProbeStatus
}

// Config parameterises one sweep.
type Config struct {
	// Targets is the address population to probe.
	Targets []netip.Addr
	// Port is the TCP port to probe (one port per sweep, as ZMap runs).
	Port uint16
	// Rate is the probe rate in packets/second; 0 means unlimited.
	Rate float64
	// Seed drives the scan-order permutation.
	Seed uint64
	// Workers is the number of concurrent probe workers; 0 picks 64.
	Workers int
	// Clock is used for rate limiting; nil means the real clock.
	Clock netsim.Clock
}

// Result is the outcome of one sweep.
type Result struct {
	// Port is the probed TCP port.
	Port uint16
	// Open lists the addresses that answered SYN-ACK, sorted.
	Open []netip.Addr
	// Closed counts RST answers; Filtered counts silent drops.
	Closed, Filtered int
}

// Total returns the number of probes sent.
func (r *Result) Total() int { return len(r.Open) + r.Closed + r.Filtered }

// Scan sweeps cfg.Targets on cfg.Port in permuted order and classifies every
// answer. It is the phase-1 liveness scan: its Open list becomes the phase-2
// service-scan target list.
func Scan(p Prober, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return &Result{Port: cfg.Port}, nil
	}
	if cfg.Port == 0 {
		return nil, fmt.Errorf("zmaplite: port must be set")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	perm, err := NewPermutation(uint64(len(cfg.Targets)), cfg.Seed)
	if err != nil {
		return nil, err
	}
	limiter := NewLimiter(cfg.Clock, cfg.Rate, 64)

	// The permutation is inherently sequential; a single feeder goroutine
	// walks it and workers consume indices.
	idxCh := make(chan uint64, workers*2)
	go func() {
		defer close(idxCh)
		for {
			i, ok := perm.Next()
			if !ok {
				return
			}
			idxCh <- i
		}
	}()

	var (
		mu  sync.Mutex
		res = Result{Port: cfg.Port}
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				limiter.Acquire()
				addr := cfg.Targets[i]
				status := p.SynProbe(addr, cfg.Port)
				mu.Lock()
				switch status {
				case netsim.StatusOpen:
					res.Open = append(res.Open, addr)
				case netsim.StatusClosed:
					res.Closed++
				default:
					res.Filtered++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(res.Open, func(i, j int) bool { return res.Open[i].Less(res.Open[j]) })
	return &res, nil
}
