package zmaplite

import (
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"aliaslimit/internal/netsim"
)

func TestPermutationFullCycleProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%5000) + 1
		p, err := NewPermutation(n, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		count := uint64(0)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPermutationEdgeSizes(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, 1025} {
		p, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Len() != n {
			t.Errorf("Len = %d, want %d", p.Len(), n)
		}
		seen := map[uint64]bool{}
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Errorf("n=%d: visited %d", n, len(seen))
		}
	}
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("n=0: want error")
	}
}

func TestPermutationIsActuallyShuffled(t *testing.T) {
	p, err := NewPermutation(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := 0
	prev := uint64(0)
	first := true
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		if !first && v == prev+1 {
			inOrder++
		}
		prev, first = v, false
	}
	if inOrder > 100 {
		t.Errorf("%d/1000 consecutive indices: not shuffled", inOrder)
	}
}

func TestPermutationDeterministicPerSeed(t *testing.T) {
	collect := func(seed uint64) []uint64 {
		p, _ := NewPermutation(64, seed)
		var out []uint64
		for {
			v, ok := p.Next()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	a, b, c := collect(1), collect(1), collect(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different order")
		}
	}
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < 32 {
		t.Errorf("different seeds nearly identical (%d/64 differ)", diff)
	}
}

func TestScanClassification(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	var targets []netip.Addr
	wantOpen := map[netip.Addr]bool{}
	open, closed := 0, 0
	for i := 0; i < 300; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, byte(i / 250), byte(i%250 + 1)})
		targets = append(targets, addr)
		switch {
		case i%3 == 0:
			d, err := netsim.NewDevice(netsim.DeviceConfig{ID: addr.String(), Addrs: []netip.Addr{addr}}, clk.Now())
			if err != nil {
				t.Fatal(err)
			}
			d.SetService(22, netsim.HandlerFunc(func(conn net.Conn, sc netsim.ServeContext) {}))
			if err := f.AddDevice(d); err != nil {
				t.Fatal(err)
			}
			wantOpen[addr] = true
			open++
		case i%5 == 0:
			d, err := netsim.NewDevice(netsim.DeviceConfig{ID: addr.String(), Addrs: []netip.Addr{addr}}, clk.Now())
			if err != nil {
				t.Fatal(err)
			}
			if err := f.AddDevice(d); err != nil {
				t.Fatal(err)
			}
			closed++
		}
	}

	res, err := Scan(f.Vantage("t"), Config{Targets: targets, Port: 22, Seed: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Open) != open {
		t.Errorf("open = %d, want %d", len(res.Open), open)
	}
	if res.Closed != closed {
		t.Errorf("closed = %d, want %d", res.Closed, closed)
	}
	if res.Filtered != 300-open-closed {
		t.Errorf("filtered = %d, want %d", res.Filtered, 300-open-closed)
	}
	if res.Total() != 300 {
		t.Errorf("total = %d", res.Total())
	}
	for _, a := range res.Open {
		if !wantOpen[a] {
			t.Errorf("address %s reported open erroneously", a)
		}
	}
	// Output must be sorted for reproducible downstream processing.
	for i := 1; i < len(res.Open); i++ {
		if !res.Open[i-1].Less(res.Open[i]) {
			t.Fatal("open list not sorted")
		}
	}
}

func TestScanEmptyAndInvalid(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	res, err := Scan(f.Vantage("t"), Config{Port: 22})
	if err != nil || res.Total() != 0 {
		t.Errorf("empty scan: %v %+v", err, res)
	}
	if _, err := Scan(f.Vantage("t"), Config{Targets: []netip.Addr{netip.MustParseAddr("10.0.0.1")}}); err == nil {
		t.Error("port 0: want error")
	}
}

func TestRateLimiterAdvancesSimClock(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	l := NewLimiter(clk, 100, 1) // 100 pps, burst 1
	start := clk.Now()
	for i := 0; i < 101; i++ {
		l.Acquire()
	}
	elapsed := clk.Now().Sub(start)
	// 101 probes at 100 pps with burst 1: ~1 simulated second.
	if elapsed < 900*time.Millisecond || elapsed > 1100*time.Millisecond {
		t.Errorf("simulated elapsed = %v, want ~1s", elapsed)
	}
}

func TestUnlimitedLimiterIsFree(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	l := NewLimiter(clk, 0, 1)
	for i := 0; i < 10000; i++ {
		l.Acquire()
	}
	if clk.Now() != time.Unix(0, 0) {
		t.Error("unlimited limiter advanced the clock")
	}
}

func TestRealClockLimiterSleeps(t *testing.T) {
	// Against the wall clock the limiter must actually pace: 1000 pps with
	// burst 1 means ~1ms between acquisitions.
	l := NewLimiter(netsim.RealClock{}, 1000, 1)
	start := time.Now()
	for i := 0; i < 20; i++ {
		l.Acquire()
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("20 tokens at 1000pps took only %v", elapsed)
	}
}

func TestLimiterBurstAllowsInitialRush(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	l := NewLimiter(clk, 10, 50)
	for i := 0; i < 50; i++ {
		l.Acquire()
	}
	if clk.Now() != time.Unix(0, 0) {
		t.Error("burst tokens should not consume simulated time")
	}
	l.Acquire() // the 51st must wait
	if clk.Now() == time.Unix(0, 0) {
		t.Error("post-burst acquisition did not advance the clock")
	}
}
