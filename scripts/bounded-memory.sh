#!/usr/bin/env bash
# Bounded-memory gate for the out-of-core collection path.
#
# Three legs:
#   1. UNRESTRICTED: megascale-x10 (quick), ordinary in-RAM collection, no
#      memory limit — the reference digest. Its peak RSS is ~270 MiB at this
#      scale; the streamed legs run under GOMEMLIMIT targets far below that.
#   2. STREAMED: the same world with -stream-collect -backend streaming under
#      GOMEMLIMIT=96MiB. The scan spills observations to disk and the
#      resolver is fed by bounded-batch replay, so the run must complete
#      under a heap target the in-RAM path cannot satisfy — and its
#      sets_digest must equal leg 1's byte for byte.
#   3. X100: megascale-x100 (quick) streamed under GOMEMLIMIT=160MiB — the
#      stream-only world. The same invocation without -stream-collect must be
#      refused (the preset's contract), and the streamed run must finish with
#      a non-empty digest.
#
# The streaming backend is the right partner for the memory gate: batch-style
# sessions buffer the whole observation load before grouping, while the
# streaming backend folds observations as the replay feeds them. Digest
# equality across backends is enforced separately (backend-equivalence job),
# which is what makes the cross-leg comparison here valid.
#
# Set BOUNDED_MEMORY_DIR to keep the work directory (CI uploads it as an
# artifact); otherwise a temp directory is used and cleaned up.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${BOUNDED_MEMORY_DIR:-}" ]; then
    workdir=$BOUNDED_MEMORY_DIR
    mkdir -p "$workdir"
else
    workdir=$(mktemp -d)
    trap 'rm -rf "$workdir"' EXIT
fi

bin=$workdir/scenarios-bin
go build -o "$bin" ./cmd/scenarios

echo "bounded-memory: unrestricted in-RAM reference (megascale-x10, quick)"
"$bin" -run megascale-x10 -quick -json "$workdir/UNRESTRICTED.json"

echo "bounded-memory: streamed run under GOMEMLIMIT=96MiB"
GOMEMLIMIT=96MiB "$bin" -run megascale-x10 -quick -stream-collect -backend streaming \
    -json "$workdir/STREAMED.json"

grep -o '"sets_digest": *"[^"]*"' "$workdir/UNRESTRICTED.json" >"$workdir/unrestricted.digest"
grep -o '"sets_digest": *"[^"]*"' "$workdir/STREAMED.json" >"$workdir/streamed.digest"
if ! diff -u "$workdir/unrestricted.digest" "$workdir/streamed.digest"; then
    echo "bounded-memory: streamed digest diverges from the in-RAM run" >&2
    exit 1
fi
echo "bounded-memory: OK — streamed sets_digest identical under the memory limit"

echo "bounded-memory: megascale-x100 must refuse to run in RAM"
if "$bin" -run megascale-x100 -quick >/dev/null 2>"$workdir/refusal.txt"; then
    echo "bounded-memory: stream-only world ran in-RAM" >&2
    exit 1
fi
grep -q 'stream-collect' "$workdir/refusal.txt"

echo "bounded-memory: megascale-x100 streamed under GOMEMLIMIT=160MiB"
GOMEMLIMIT=160MiB "$bin" -run megascale-x100 -quick -stream-collect -backend streaming \
    -json "$workdir/X100.json"
x100=$(grep -o '"sets_digest": *"[^"]*"' "$workdir/X100.json" | head -1)
if [ -z "$x100" ]; then
    echo "bounded-memory: megascale-x100 produced no sets digest" >&2
    exit 1
fi
echo "bounded-memory: OK — stream-only world completed out-of-core ($x100)"
