#!/usr/bin/env bash
# Kill-and-resume harness for the durable observation log.
#
# Runs the churn-storm longitudinal preset three ways:
#   1. REF: uninterrupted, recording every epoch's sets digest.
#   2. KILLED: the same run with -log, SIGKILLed mid-epoch-3 (no clean
#      shutdown, buffered observations lost, report never written).
#   3. RESUMED: `scenarios -resume` over the killed run's log directory.
#
# The gate: every per-epoch sets digest of the resumed run must equal the
# uninterrupted run's. A single divergent digest — torn frame replayed, churn
# draw replay drift, partial epoch not rolled back — fails the script.
#
# Set CRASH_RESUME_DIR to keep the work directory (CI uploads it as an
# artifact); otherwise a temp directory is used and cleaned up.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${CRASH_RESUME_DIR:-}" ]; then
    workdir=$CRASH_RESUME_DIR
    mkdir -p "$workdir"
else
    workdir=$(mktemp -d)
    trap 'rm -rf "$workdir"' EXIT
fi

# A real binary, not `go run`: the SIGKILL must hit the scenario process
# itself, not a toolchain wrapper that leaves the child running.
bin=$workdir/scenarios-bin
go build -o "$bin" ./cmd/scenarios

echo "crash-resume: reference run (uninterrupted)"
"$bin" -run churn-storm -epochs 5 -quick -json "$workdir/REF.json"

logdir=$workdir/RUN
echo "crash-resume: durable run (to be killed)"
"$bin" -run churn-storm -epochs 5 -quick -log "$logdir" -json "$workdir/KILLED.json" &
pid=$!

# Wait until the manifest says two epochs committed, then give epoch 3 a
# moment to get observations in flight and kill without warning.
manifest=$logdir/MANIFEST.json
committed=0
for _ in $(seq 1 600); do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "crash-resume: run exited before the kill landed" >&2
        exit 1
    fi
    if [ -f "$manifest" ]; then
        committed=$(grep -o '"epochs_done": *[0-9]*' "$manifest" | grep -o '[0-9]*$' || echo 0)
        [ "${committed:-0}" -ge 2 ] && break
    fi
    sleep 0.2
done
if [ "${committed:-0}" -lt 2 ]; then
    echo "crash-resume: no epoch committed within the poll window" >&2
    exit 1
fi
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "crash-resume: killed pid $pid with $committed epochs committed"

if [ -e "$workdir/KILLED.json" ]; then
    echo "crash-resume: run finished before the kill landed; raise -epochs" >&2
    exit 1
fi

echo "crash-resume: resuming from $logdir"
"$bin" -resume "$logdir" -json "$workdir/RESUMED.json"

# Every epoch's sets digest — replayed and post-kill live alike — must match
# the uninterrupted run exactly.
grep -o '"sets_digest": *"[^"]*"' "$workdir/REF.json" >"$workdir/ref.digests"
grep -o '"sets_digest": *"[^"]*"' "$workdir/RESUMED.json" >"$workdir/resumed.digests"
if ! diff -u "$workdir/ref.digests" "$workdir/resumed.digests"; then
    echo "crash-resume: resumed digests diverge from the uninterrupted run" >&2
    exit 1
fi
n=$(wc -l <"$workdir/ref.digests")
echo "crash-resume: OK — $n sets digests identical after kill -9 and resume"
